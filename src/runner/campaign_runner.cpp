#include "runner/campaign_runner.hpp"

// qperc-lint: allow-file(wall-clock) operator-facing progress/ETA display only; wall time never reaches trial results or the event schedule
#include <mutex>
#include <stdexcept>
#include <utility>

#include "core/protocol.hpp"
#include "core/video.hpp"
#include "net/profile.hpp"
#include "runner/executor.hpp"
#include "trace/trace.hpp"
#include "web/website.hpp"

namespace qperc::runner {

namespace {

struct CounterSink final : trace::TraceSink {
  trace::TrialCounters counters;
  void on_event(const trace::Event& event) override { counters.observe(event); }
};

}  // namespace

CampaignReport run_campaign(const CampaignSpec& spec, ResultStore& store,
                            const CampaignOptions& options) {
  spec.validate();
  if (store.seed() != spec.seed || store.runs() != spec.runs) {
    throw std::invalid_argument("result store (seed, runs) does not match the campaign");
  }

  const auto shard_tasks = spec.tasks();
  std::vector<CampaignTask> pending;
  pending.reserve(shard_tasks.size());
  for (const auto& task : shard_tasks) {
    if (!store.contains(task.site, task.protocol, task.network)) pending.push_back(task);
  }
  CampaignReport report;
  report.total = shard_tasks.size();
  report.skipped = report.total - pending.size();
  if (options.max_tasks != 0 && pending.size() > options.max_tasks) {
    pending.resize(options.max_tasks);
  }

  // One catalog for the whole campaign; lookups are read-only and safe to
  // share across workers.
  const auto catalog = web::study_catalog(spec.seed);
  const auto site_by_name = [&catalog](const std::string& name) -> const web::Website& {
    for (const auto& site : catalog) {
      if (site.name == name) return site;
    }
    throw std::invalid_argument("unknown site: " + name);
  };

  const auto start = std::chrono::steady_clock::now();
  std::mutex progress_mutex;
  std::size_t completed = 0;
  trace::TrialCounters totals;
  auto last_emit = start;

  const auto snapshot = [&]() {  // callers hold progress_mutex
    CampaignProgress progress;
    progress.total = report.total;
    progress.skipped = report.skipped;
    progress.pending = pending.size();
    progress.completed = completed;
    progress.counters = totals;
    progress.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (progress.elapsed_seconds > 0.0 && completed > 0) {
      progress.tasks_per_second =
          static_cast<double>(completed) / progress.elapsed_seconds;
      progress.eta_seconds =
          static_cast<double>(pending.size() - completed) / progress.tasks_per_second;
    }
    return progress;
  };

  Executor executor({.jobs = options.jobs, .max_attempts = options.max_attempts});
  auto failures = executor.run(pending.size(), [&](std::size_t index) {
    const CampaignTask& task = pending[index];
    const web::Website& site = site_by_name(task.site);
    const core::ProtocolConfig& protocol = core::protocol_by_name(task.protocol);
    const net::NetworkProfile& profile = net::profile_for(task.network);

    CounterSink sink;
    core::Video video =
        core::produce_video(site, protocol, profile, spec.runs, task.base_seed,
                            options.collect_counters ? &sink : nullptr);
    store.put(std::move(video));

    std::function<void(const CampaignProgress&)> emit;
    CampaignProgress progress;
    {
      const std::lock_guard<std::mutex> lock(progress_mutex);
      ++completed;
      if (options.collect_counters) totals.merge(sink.counters);
      const auto now = std::chrono::steady_clock::now();
      if (options.on_progress && now - last_emit >= options.progress_interval) {
        last_emit = now;
        progress = snapshot();
        emit = options.on_progress;
      }
    }
    if (emit) emit(progress);
  });
  store.checkpoint();

  report.executed = pending.size();
  report.failures.reserve(failures.size());
  for (auto& failure : failures) {
    CampaignFailure entry;
    entry.task = pending[failure.index];
    entry.attempts = failure.attempts;
    entry.message = std::move(failure.message);
    entry.error = failure.error;
    report.failures.push_back(std::move(entry));
  }
  report.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  {
    const std::lock_guard<std::mutex> lock(progress_mutex);
    report.counters = totals;
    if (options.on_progress) options.on_progress(snapshot());
  }
  return report;
}

std::size_t adopt_results(const ResultStore& store, core::VideoLibrary& library) {
  if (store.seed() != library.catalog_seed() || store.runs() != library.runs()) {
    throw std::invalid_argument("result store (seed, runs) does not match the library");
  }
  std::size_t adopted = 0;
  store.for_each([&](const core::Video& video) {
    if (library.insert(video)) ++adopted;
  });
  return adopted;
}

}  // namespace qperc::runner
