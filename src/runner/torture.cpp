#include "runner/torture.hpp"

#include <array>
#include <exception>
#include <optional>
#include <ostream>
#include <utility>

#include "browser/page_loader.hpp"
#include "core/cross_traffic.hpp"
#include "core/protocol.hpp"
#include "http/session.hpp"
#include "net/emulated_network.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "web/website.hpp"

namespace qperc::runner {
namespace {

/// Trials run sequentially, so a plain counter under the process-global
/// violation handler is race-free.
std::uint64_t g_violations = 0;

void counting_handler(const char* /*file*/, int /*line*/, const char* /*expr*/,
                      const std::string& /*message*/) {
  ++g_violations;
}

/// Restores the previous handler even when a trial throws.
class HandlerGuard {
 public:
  HandlerGuard() : previous_(check::set_violation_handler(&counting_handler)) {}
  ~HandlerGuard() { check::set_violation_handler(previous_); }
  HandlerGuard(const HandlerGuard&) = delete;
  HandlerGuard& operator=(const HandlerGuard&) = delete;

 private:
  check::ViolationHandler previous_;
};

/// Virtual-time cap per torture trial. Shorter than the study cap: heavily
/// impaired loads legitimately outlive any deadline (counted as incomplete,
/// not failed), and liveness is guarded by the event budget, not the clock.
constexpr SimDuration kTortureTimeCap = seconds(90);

struct TrialOutcome {
  browser::PageLoadResult result;
  bool budget_exhausted = false;
  bool deadlocked = false;
};

TrialOutcome run_torture_trial(const web::Website& site, const core::ProtocolConfig& protocol,
                               const net::NetworkProfile& profile,
                               const net::ContentionConfig& contention, std::uint64_t seed,
                               std::uint64_t max_events) {
  profile.validate();
  contention.validate();
  sim::Simulator simulator;
  Rng rng(seed);
  net::EmulatedNetwork network(simulator, profile, rng.fork("network"), contention);

  // Same ordering as TrialContext::run: cross traffic first, so its flow
  // ids, endpoints, and start events all precede the browser's.
  std::optional<core::CrossTraffic> cross;
  if (contention.enabled()) {
    cross.emplace(simulator, network, contention, rng.fork("contention"));
  }

  // Configs hoisted so the SmallFunction factory captures only references
  // (see TrialContext::run); both outlive the loader below.
  const tcp::TcpConfig tcp_config = protocol.transport != core::Transport::kQuic
                                        ? protocol.tcp_config()
                                        : tcp::TcpConfig{};
  const quic::QuicConfig quic_config = protocol.transport == core::Transport::kQuic
                                           ? protocol.quic_config()
                                           : quic::QuicConfig{};
  browser::PageLoader::SessionFactory factory;
  switch (protocol.transport) {
    case core::Transport::kTcp:
      factory = [&simulator, &network, &tcp_config](net::ServerId origin) {
        return http::make_h2_session(simulator, network, origin, tcp_config);
      };
      break;
    case core::Transport::kQuic:
      factory = [&simulator, &network, &quic_config](net::ServerId origin) {
        return http::make_quic_session(simulator, network, origin, quic_config);
      };
      break;
    case core::Transport::kTcpH1:
      factory = [&simulator, &network, &tcp_config](net::ServerId origin) {
        return http::make_h1_session(simulator, network, origin, tcp_config);
      };
      break;
  }

  // Mirrors browser::load_page, but keeps the simulator visible so the
  // harness can tell the three ways a trial can stop short apart: time cap
  // (fine), event-budget exhaustion (hung), empty queue with an unfinished
  // page (deadlock — every recovery timer has been dropped).
  browser::PageLoader loader(simulator, site, std::move(factory), rng.fork("browser"));
  loader.start();
  TrialOutcome outcome;
  const SimTime deadline = simulator.now() + kTortureTimeCap;
  const std::uint64_t events_at_start = simulator.events_processed();
  while (!loader.finished() && simulator.now() < deadline) {
    const std::uint64_t spent = simulator.events_processed() - events_at_start;
    if (spent >= max_events) {
      outcome.budget_exhausted = true;
      break;
    }
    if (simulator.pending_events() == 0) {
      outcome.deadlocked = true;
      break;
    }
    const SimTime next = std::min(deadline, simulator.now() + milliseconds(200));
    simulator.run_until(next, max_events - spent);
  }
  outcome.result = loader.result();
  return outcome;
}

void add_failure(TortureReport& report, std::size_t cap, std::string line) {
  if (report.failures.size() < cap) report.failures.push_back(std::move(line));
}

}  // namespace

TortureGrid parse_torture_grid(std::string_view name) {
  if (name == "small") return TortureGrid::kSmall;
  if (name == "full") return TortureGrid::kFull;
  throw std::invalid_argument("unknown torture grid '" + std::string(name) +
                              "' (expected 'small' or 'full')");
}

std::vector<TortureScenario> torture_scenarios(const net::NetworkProfile& base) {
  std::vector<TortureScenario> scenarios;
  const auto derive = [&](std::string name, auto mutate) {
    net::NetworkProfile profile = base;
    profile.name = std::string(base.name) + "/" + name;
    mutate(profile.impairments);
    profile.validate();
    scenarios.push_back(TortureScenario{std::move(name), std::move(profile)});
  };

  derive("reorder-heavy", [](net::LinkImpairments& imp) {
    imp.reorder_rate = 0.35;
    imp.reorder_delay_min = milliseconds(2);
    imp.reorder_delay_max = milliseconds(40);
  });
  derive("duplicate-storm", [](net::LinkImpairments& imp) { imp.duplicate_rate = 0.3; });
  derive("ge-burst", [](net::LinkImpairments& imp) {
    imp.gilbert_elliott = net::GilbertElliott{
        .enter_bad = 0.03, .exit_bad = 0.25, .loss_good = 0.0, .loss_bad = 0.5};
  });
  derive("flapping", [](net::LinkImpairments& imp) {
    imp.outage_start = SimTime{seconds(1)};
    imp.outage_duration = milliseconds(300);
    imp.outage_interval = seconds(3);
  });
  derive("kitchen-sink", [](net::LinkImpairments& imp) {
    imp.reorder_rate = 0.2;
    imp.reorder_delay_min = milliseconds(1);
    imp.reorder_delay_max = milliseconds(50);
    imp.duplicate_rate = 0.1;
    imp.gilbert_elliott = net::GilbertElliott{
        .enter_bad = 0.02, .exit_bad = 0.3, .loss_good = 0.0, .loss_bad = 0.4};
    imp.outage_start = SimTime{seconds(2)};
    imp.outage_duration = milliseconds(250);
    imp.outage_interval = seconds(5);
  });
  return scenarios;
}

std::vector<TortureScenario> contention_scenarios(const net::NetworkProfile& base) {
  std::vector<TortureScenario> scenarios;

  // 8 cubic bulk flows saturating an otherwise clean bottleneck: droptail
  // pressure, sustained queue-full drops, and heavy page retransmissions.
  {
    TortureScenario scenario;
    scenario.name = "contended-8cubic";
    scenario.profile = base;
    scenario.profile.name = std::string(base.name) + "/" + scenario.name;
    scenario.contention.flows = 8;
    scenario.contention.mix = net::CrossMix::kCubic;
    scenario.profile.validate();
    scenario.contention.validate();
    scenarios.push_back(std::move(scenario));
  }

  // Reordering layered over a mixed TCP/QUIC on-off crowd: loss recovery,
  // reorder buffers, and endpoint demux all churn at once.
  {
    TortureScenario scenario;
    scenario.name = "reorder-contended";
    scenario.profile = base;
    scenario.profile.name = std::string(base.name) + "/" + scenario.name;
    scenario.profile.impairments.reorder_rate = 0.35;
    scenario.profile.impairments.reorder_delay_min = milliseconds(2);
    scenario.profile.impairments.reorder_delay_max = milliseconds(40);
    scenario.contention.flows = 4;
    scenario.contention.mix = net::CrossMix::kMixed;
    scenario.contention.start_stagger = milliseconds(250);
    scenario.contention.burst_bytes = 256 * 1024;
    scenario.contention.off_time = milliseconds(100);
    scenario.profile.validate();
    scenario.contention.validate();
    scenarios.push_back(std::move(scenario));
  }
  return scenarios;
}

std::vector<TortureScenario> schedule_scenarios(const net::NetworkProfile& base) {
  std::vector<TortureScenario> scenarios;
  const auto derive = [&](std::string name, auto mutate) {
    net::NetworkProfile profile = base;
    profile.name = std::string(base.name) + "/" + name;
    mutate(profile);
    profile.validate();
    scenarios.push_back(TortureScenario{std::move(name), std::move(profile)});
  };

  // Synthetic cellular/Wi-Fi downlink rate traces: mid-backlog serialization
  // re-derivation on every epoch boundary, all trial long.
  derive("lte-trace", [](net::NetworkProfile& profile) {
    profile.downlink_schedule = net::RateSchedule::lte_trace(profile.downlink, 11);
  });
  derive("wifi-trace", [](net::NetworkProfile& profile) {
    profile.downlink_schedule = net::RateSchedule::wifi_trace(profile.downlink, 12);
  });

  // Token-bucket policer at half the provisioned rate: sustained
  // post-serialization drops once the burst drains (BBR's lt_bw food).
  derive("policed", [](net::NetworkProfile& profile) {
    profile.impairments.policer_rate = profile.downlink.scaled(0.5);
    profile.impairments.policer_burst_bytes = 64 * 1024;
  });

  // Sudden 10x rate cliff one second in, recovering two seconds later: the
  // RTT inflation that historically triggered spurious-RTO retransmit storms.
  derive("rate-cliff", [](net::NetworkProfile& profile) {
    const std::array<net::RateStep, 3> steps{{
        {SimDuration::zero(), profile.downlink},
        {seconds(1), profile.downlink.scaled(0.1)},
        {seconds(3), profile.downlink},
    }};
    profile.downlink_schedule = net::RateSchedule::steps(steps.data(), steps.size());
  });
  return scenarios;
}

net::NetworkProfile zero_delay_profile() {
  net::NetworkProfile profile;
  profile.kind = net::NetworkKind::kDsl;
  profile.name = "zero-delay";
  // Fast enough that a full MTU serializes in under one nanosecond tick:
  // delivery, ACK, and RTT sample all land in the sending instant.
  profile.uplink = DataRate::bits_per_second(100'000'000'000'000ULL);
  profile.downlink = DataRate::bits_per_second(100'000'000'000'000ULL);
  profile.min_rtt = SimDuration::zero();
  profile.loss_rate = 0.0;
  profile.queue_delay = milliseconds(1);
  profile.validate();
  return profile;
}

TortureReport run_torture(const TortureOptions& options, std::ostream* progress) {
  const bool small = options.grid == TortureGrid::kSmall;
  const auto catalog = web::study_catalog(options.seed);

  std::vector<const web::Website*> sites;
  if (small) {
    for (const std::size_t index : {std::size_t{0}, std::size_t{9}, std::size_t{19},
                                    std::size_t{29}}) {
      sites.push_back(&catalog.at(index));
    }
  } else {
    for (const auto& site : catalog) sites.push_back(&site);
  }

  std::vector<const core::ProtocolConfig*> protocols;
  if (small) {
    // One representative per stack; the full grid covers every Table-1 row.
    const core::ProtocolConfig* tcp = nullptr;
    const core::ProtocolConfig* quic = nullptr;
    for (const auto& protocol : core::paper_protocols()) {
      if (tcp == nullptr && protocol.transport == core::Transport::kTcp) tcp = &protocol;
      if (quic == nullptr && protocol.transport == core::Transport::kQuic) quic = &protocol;
    }
    protocols = {tcp, quic};
  } else {
    for (const auto& protocol : core::paper_protocols()) protocols.push_back(&protocol);
    protocols.push_back(&core::http1_baseline_protocol());
  }

  std::vector<TortureScenario> scenarios;
  if (small) {
    for (const auto& scenario : torture_scenarios(net::dsl_profile())) {
      scenarios.push_back(scenario);
    }
    for (const auto& scenario : torture_scenarios(net::mss_profile())) {
      scenarios.push_back(scenario);
    }
  } else {
    for (const auto& base : net::all_profiles()) {
      for (const auto& scenario : torture_scenarios(base)) scenarios.push_back(scenario);
    }
  }
  scenarios.push_back(TortureScenario{"zero-delay", zero_delay_profile()});
  for (const auto& scenario : contention_scenarios(net::dsl_profile())) {
    scenarios.push_back(scenario);
  }
  // Variable-rate/policing cells run in both grids: the serialization
  // re-derivation and policer accounting are new enough to earn small-grid
  // coverage on the paper's cellular profile.
  for (const auto& scenario : schedule_scenarios(net::lte_profile())) {
    scenarios.push_back(scenario);
  }
  if (!small) {
    for (const auto& scenario : contention_scenarios(net::lte_profile())) {
      scenarios.push_back(scenario);
    }
    for (const auto& scenario : schedule_scenarios(net::dsl_profile())) {
      scenarios.push_back(scenario);
    }
  }

  TortureReport report;
  HandlerGuard handler_guard;
  for (const auto& scenario : scenarios) {
    for (const auto* protocol : protocols) {
      const std::uint64_t violations_before_row = report.check_violations;
      const std::uint64_t hung_before_row = report.hung_trials;
      for (const auto* site : sites) {
        const std::string label = scenario.profile.name + "|" + scenario.name + "|" +
                                  protocol->name + "|" + site->name;
        const std::uint64_t seed =
            fnv1a(label) ^ (options.seed * 0x9E3779B97F4A7C15ULL);
        ++report.trials;
        g_violations = 0;
        try {
          const TrialOutcome outcome =
              run_torture_trial(*site, *protocol, scenario.profile, scenario.contention,
                                seed, options.max_events_per_trial);
          if (g_violations != 0) {
            report.check_violations += g_violations;
            add_failure(report, options.max_failures_reported,
                        label + ": " + std::to_string(g_violations) + " CHECK violation(s)");
          }
          if (outcome.budget_exhausted || outcome.deadlocked) {
            ++report.hung_trials;
            if (outcome.deadlocked) ++report.deadlocks;
            add_failure(report, options.max_failures_reported,
                        label + (outcome.deadlocked
                                     ? ": DEADLOCK (empty event queue, page unfinished)"
                                     : ": HUNG (event budget exhausted)"));
          } else if (!outcome.result.metrics.finished) {
            ++report.incomplete_pages;
          }
          for (const auto& object : site->objects) {
            const std::uint64_t delivered = outcome.result.object_body_delivered[object.id];
            const bool complete =
                outcome.result.object_complete_at[object.id] != kNoTime;
            if (delivered > object.bytes || (complete && delivered != object.bytes)) {
              ++report.conservation_failures;
              add_failure(report, options.max_failures_reported,
                          label + ": object " + std::to_string(object.id) + " delivered " +
                              std::to_string(delivered) + " of " +
                              std::to_string(object.bytes) + " bytes" +
                              (complete ? " (complete)" : ""));
            }
          }
        } catch (const std::exception& e) {
          report.check_violations += g_violations;
          ++report.exceptions;
          add_failure(report, options.max_failures_reported, label + ": exception: " + e.what());
        }
      }
      if (progress != nullptr) {
        *progress << "torture: " << scenario.profile.name << " x " << protocol->name << " x "
                  << sites.size() << " sites";
        if (report.check_violations != violations_before_row ||
            report.hung_trials != hung_before_row) {
          *progress << "  [FAILURES]";
        }
        *progress << "\n";
      }
    }
  }
  return report;
}

}  // namespace qperc::runner
