// Fixed-size worker pool with a shared work queue, per-task exception
// capture, and bounded retry.
//
// This is the one place in the tree that owns threads. Tasks are claimed
// from an atomic counter in index order; a task writes its result into a
// caller-owned slot keyed by the task *index*, never by thread identity,
// which is what keeps every higher-level result independent of the job
// count. A throwing task no longer takes the process down (the old
// VideoLibrary::precompute thread loop called std::terminate): the final
// attempt's std::exception_ptr is captured and returned so the caller
// decides whether to rethrow, record, or retry the whole task elsewhere.
//
// Header-only leaf utility (std only), usable from any layer like
// src/util — src/core uses it below the qperc_runner library.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace qperc::runner {

/// One task whose final attempt threw. `error` is the captured exception,
/// `message` its what() (or a placeholder for non-std exceptions).
struct TaskFailure {
  std::size_t index = 0;
  unsigned attempts = 0;
  std::exception_ptr error;
  std::string message;
};

/// Renders an exception_ptr for reports and logs.
inline std::string describe_exception(const std::exception_ptr& error) {
  if (!error) return "no exception";
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

struct ExecutorOptions {
  /// Worker threads; 0 = one per hardware thread. A single job runs the
  /// tasks inline on the calling thread.
  unsigned jobs = 0;
  /// Attempts per task before it is recorded as failed (>= 1).
  unsigned max_attempts = 1;
};

class Executor {
 public:
  explicit Executor(ExecutorOptions options = {}) : options_(options) {}

  [[nodiscard]] unsigned resolved_jobs(std::size_t task_count) const {
    unsigned jobs = options_.jobs != 0 ? options_.jobs
                                       : std::max(1u, std::thread::hardware_concurrency());
    if (task_count < jobs) jobs = static_cast<unsigned>(std::max<std::size_t>(1, task_count));
    return jobs;
  }

  /// Runs fn(i) for every i in [0, task_count). Returns the failures
  /// (tasks whose every attempt threw) sorted by task index; all other
  /// tasks are guaranteed to have completed. fn may be called from
  /// multiple threads concurrently but never twice concurrently for the
  /// same index.
  std::vector<TaskFailure> run(std::size_t task_count,
                               const std::function<void(std::size_t)>& fn) const {
    std::vector<TaskFailure> failures;
    if (task_count == 0) return failures;
    const unsigned jobs = resolved_jobs(task_count);
    const unsigned max_attempts = std::max(1u, options_.max_attempts);

    std::atomic<std::size_t> next{0};
    std::mutex failures_mutex;
    const auto worker = [&] {
      while (true) {
        const std::size_t index = next.fetch_add(1);
        if (index >= task_count) return;
        for (unsigned attempt = 1;; ++attempt) {
          try {
            fn(index);
            break;
          } catch (...) {
            if (attempt >= max_attempts) {
              TaskFailure failure;
              failure.index = index;
              failure.attempts = attempt;
              failure.error = std::current_exception();
              failure.message = describe_exception(failure.error);
              const std::lock_guard<std::mutex> lock(failures_mutex);
              failures.push_back(std::move(failure));
              break;
            }
          }
        }
      }
    };

    if (jobs == 1) {
      worker();
    } else {
      std::vector<std::thread> pool;
      pool.reserve(jobs);
      for (unsigned w = 0; w < jobs; ++w) pool.emplace_back(worker);
      for (auto& thread : pool) thread.join();
    }
    std::sort(failures.begin(), failures.end(),
              [](const TaskFailure& a, const TaskFailure& b) { return a.index < b.index; });
    return failures;
  }

 private:
  ExecutorOptions options_;
};

}  // namespace qperc::runner
