// Visual-progress curve and the paper's five technical metrics:
// FVC, LVC, PLT, SI (Speed Index), VC85 (§3 "Producing Videos").
#pragma once

#include <vector>

#include "util/time.hpp"

namespace qperc::browser {

/// One step of the visual-completeness curve: at `time`, completeness jumps
/// to `completeness` (a fraction in [0, 1]).
struct VcSample {
  SimTime time{0};
  double completeness = 0.0;
};

struct PageMetrics {
  SimDuration first_visual_change{0};
  SimDuration last_visual_change{0};
  SimDuration page_load_time{0};
  SimDuration visual_complete_85{0};
  /// Speed Index: integral of (1 - VC(t)) dt, in the same time unit.
  SimDuration speed_index{0};
  bool finished = false;

  [[nodiscard]] double fvc_ms() const { return to_millis(first_visual_change); }
  [[nodiscard]] double lvc_ms() const { return to_millis(last_visual_change); }
  [[nodiscard]] double plt_ms() const { return to_millis(page_load_time); }
  [[nodiscard]] double vc85_ms() const { return to_millis(visual_complete_85); }
  [[nodiscard]] double si_ms() const { return to_millis(speed_index); }
  [[nodiscard]] double metric_ms(std::size_t index) const;
};

/// Metric order used throughout reporting (matches Figure 6's rows).
inline constexpr std::size_t kMetricCount = 5;
[[nodiscard]] const char* metric_name(std::size_t index);

/// Computes metrics from a step curve. `page_load_time` is supplied by the
/// loader (all objects fetched); the curve must be sorted by time with
/// nondecreasing completeness.
[[nodiscard]] PageMetrics compute_metrics(const std::vector<VcSample>& curve,
                                          SimDuration page_load_time, bool finished);

}  // namespace qperc::browser
