#include "browser/metrics.hpp"

#include <algorithm>

namespace qperc::browser {

const char* metric_name(std::size_t index) {
  switch (index) {
    case 0: return "FVC";
    case 1: return "SI";
    case 2: return "VC85";
    case 3: return "LVC";
    case 4: return "PLT";
    default: return "?";
  }
}

double PageMetrics::metric_ms(std::size_t index) const {
  switch (index) {
    case 0: return fvc_ms();
    case 1: return si_ms();
    case 2: return vc85_ms();
    case 3: return lvc_ms();
    case 4: return plt_ms();
    default: return 0.0;
  }
}

PageMetrics compute_metrics(const std::vector<VcSample>& curve,
                            SimDuration page_load_time, bool finished) {
  PageMetrics metrics;
  metrics.page_load_time = page_load_time;
  metrics.finished = finished;
  if (curve.empty()) {
    metrics.first_visual_change = page_load_time;
    metrics.last_visual_change = page_load_time;
    metrics.visual_complete_85 = page_load_time;
    metrics.speed_index = page_load_time;
    return metrics;
  }

  metrics.first_visual_change = curve.front().time;
  metrics.last_visual_change = curve.back().time;

  // VC85: first sample reaching 85% completeness.
  metrics.visual_complete_85 = metrics.last_visual_change;
  for (const auto& sample : curve) {
    if (sample.completeness >= 0.85) {
      metrics.visual_complete_85 = sample.time;
      break;
    }
  }

  // Speed Index: area above the step curve up to the last visual change.
  double area_seconds = to_seconds(curve.front().time);  // VC==0 until FVC
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const SimTime segment_end = i + 1 < curve.size() ? curve[i + 1].time : curve[i].time;
    const double dt = to_seconds(segment_end - curve[i].time);
    area_seconds += (1.0 - std::min(curve[i].completeness, 1.0)) * dt;
  }
  metrics.speed_index = from_seconds(area_seconds);
  return metrics;
}

}  // namespace qperc::browser
