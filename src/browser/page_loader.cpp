#include "browser/page_loader.hpp"

#include <algorithm>
#include <map>

#include "util/check.hpp"

namespace qperc::browser {
namespace {

/// Priority classes mirror Chromium's resource scheduler: document and
/// blocking CSS first, scripts/fonts next, images last.
std::uint8_t request_priority(const web::WebObject& object) {
  return object.priority;
}

}  // namespace

PageLoader::PageLoader(sim::Simulator& simulator, const web::Website& site,
                       SessionFactory session_factory, Rng rng)
    : simulator_(simulator),
      site_(site),
      session_factory_(std::move(session_factory)),
      rng_(rng),
      sessions_(ArenaAllocator<std::pair<const std::uint32_t, std::unique_ptr<http::Session>>>(
          simulator.arena())),
      waiting_origins_(ArenaAllocator<std::uint32_t>(simulator.arena())),
      queued_objects_(ArenaAllocator<std::pair<const std::uint32_t, ArenaVec<std::uint32_t>>>(
          simulator.arena())),
      states_(ArenaAllocator<ObjectState>(simulator.arena())),
      children_(ArenaAllocator<ArenaVec<std::uint32_t>>(simulator.arena())),
      roots_(ArenaAllocator<std::uint32_t>(simulator.arena())) {
  states_.resize(site.objects.size());
  children_.resize(site.objects.size());
  for (const auto& object : site.objects) {
    if (object.parent < 0) {
      roots_.push_back(object.id);
    } else {
      // Always-on: an out-of-range parent id would index past the children_
      // vector; a corrupt catalog must not become memory corruption.
      QPERC_CHECK_LT(static_cast<std::size_t>(object.parent), site.objects.size())
          << "object references a parent outside the site catalog";
      children_[static_cast<std::size_t>(object.parent)].push_back(simulator.arena(),
                                                                   object.id);
    }
  }
#if QPERC_INVARIANTS_ENABLED
  // The discovery graph must be a DAG: walking parent links from any object
  // has to reach a root within |objects| steps, or there is a cycle and the
  // load would deadlock waiting for an object to discover itself.
  for (const auto& object : site.objects) {
    std::int64_t cursor = object.parent;
    std::size_t steps = 0;
    while (cursor >= 0) {
      QPERC_DCHECK_LT(steps, site.objects.size())
          << "cycle in the object dependency graph";
      cursor = site.objects[static_cast<std::size_t>(cursor)].parent;
      ++steps;
    }
  }
#endif
}

void PageLoader::start() {
  for (const std::uint32_t id : roots_) request_object(id);
}

void PageLoader::open_connection(std::uint32_t origin) {
  ++connecting_;
  simulator_.trace_event(trace::EventType::kConnectionOpened, trace::Endpoint::kClient,
                         /*flow=*/0, origin);
  auto session = session_factory_(net::ServerId{origin});
  session->set_on_established([this] { on_connection_established(); });
  session->start();
  auto [it, inserted] = sessions_.emplace(origin, std::move(session));
  // Flush objects that queued up while the pool slot was pending.
  if (const auto queued = queued_objects_.find(origin); queued != queued_objects_.end()) {
    for (const std::uint32_t id : queued->second) submit_to_session(*it->second, id);
    queued_objects_.erase(queued);
  }
}

void PageLoader::on_connection_established() {
  if (connecting_ > 0) --connecting_;
  while (connecting_ < kMaxConcurrentConnecting && !waiting_origins_.empty()) {
    const std::uint32_t origin = waiting_origins_.front();
    waiting_origins_.erase(waiting_origins_.begin());
    open_connection(origin);
  }
}

void PageLoader::dispatch(std::uint32_t id) {
  const std::uint32_t origin = site_.objects[id].origin;
  if (const auto it = sessions_.find(origin); it != sessions_.end()) {
    submit_to_session(*it->second, id);
    return;
  }
  // No session yet: queue the object; the first object for an origin also
  // claims a connection-pool slot (or joins the wait list).
  const bool origin_pending = queued_objects_.contains(origin);
  queued_objects_[origin].push_back(simulator_.arena(), id);
  if (origin_pending) return;
  if (connecting_ < kMaxConcurrentConnecting) {
    open_connection(origin);  // flushes this origin's queue
  } else {
    waiting_origins_.push_back(origin);
  }
}

void PageLoader::submit_to_session(http::Session& session, std::uint32_t id) {
  const web::WebObject& object = site_.objects[id];
  http::Request request;
  request.object_id = id;
  request.request_bytes = 380;
  request.response_header_bytes = 140;
  request.response_body_bytes = object.bytes;
  request.priority = request_priority(object);
  // Real origin servers answer with a spread of first-byte latencies; the
  // jitter also desynchronizes multi-origin response bursts.
  request.server_think_time =
      from_seconds(0.001 + std::min(rng_.exponential(0.006), 0.040));
  session.submit(request, [this](std::uint32_t oid, std::uint64_t body, bool complete) {
    on_progress(oid, body, complete);
  });
}

void PageLoader::request_object(std::uint32_t id) {
  const web::WebObject& requested = site_.objects[id];
  QPERC_DCHECK(requested.parent < 0 ||
               states_[static_cast<std::size_t>(requested.parent)].requested)
      << "object requested before its discovering parent";
  ObjectState& state = states_[id];
  if (state.requested) return;
  state.requested = true;
  if (simulator_.trace() != nullptr) {
    const web::WebObject& object = site_.objects[id];
    simulator_.trace_event(trace::EventType::kObjectRequested, trace::Endpoint::kClient,
                           /*flow=*/0, id, object.bytes, object.origin);
  }
  dispatch(id);
}

void PageLoader::on_progress(std::uint32_t id, std::uint64_t body_bytes, bool complete) {
  ObjectState& state = states_[id];
  state.body_delivered = std::max(state.body_delivered, body_bytes);
  check_discoveries(id);
  if (complete && !state.complete) on_object_complete(id);
}

void PageLoader::check_discoveries(std::uint32_t parent_id) {
  const ObjectState& parent_state = states_[parent_id];
  const web::WebObject& parent = site_.objects[parent_id];
  for (const std::uint32_t child_id : children_[parent_id]) {
    if (states_[child_id].requested) continue;
    const web::WebObject& child = site_.objects[child_id];
    const auto threshold = static_cast<std::uint64_t>(
        child.discovery_fraction * static_cast<double>(parent.bytes));
    if (parent_state.body_delivered >= threshold ||
        (parent_state.complete && parent_state.body_delivered >= parent.bytes)) {
      states_[child_id].requested = true;  // claim now; submit after parse delay
      simulator_.schedule_in(child.parse_delay, [this, child_id] {
        states_[child_id].requested = false;
        request_object(child_id);
      });
    }
  }
}

void PageLoader::on_object_complete(std::uint32_t id) {
  ObjectState& state = states_[id];
  QPERC_DCHECK(!state.complete) << "object completed twice";
  QPERC_DCHECK_GE(state.body_delivered, site_.objects[id].bytes)
      << "object completed before its body was fully delivered";
  state.complete = true;
  state.complete_at = simulator_.now();
  ++completed_objects_;
  QPERC_DCHECK_LE(completed_objects_, site_.objects.size());
  page_load_end_ = std::max(page_load_end_, state.complete_at);
  if (simulator_.trace() != nullptr) {
    simulator_.trace_event(trace::EventType::kObjectComplete, trace::Endpoint::kClient,
                           /*flow=*/0, id, site_.objects[id].bytes, completed_objects_);
  }
  check_discoveries(id);
}

PageLoadResult PageLoader::result() const {
  PageLoadResult result;
  result.connections_opened = static_cast<std::uint32_t>(sessions_.size());
  result.object_complete_at.assign(site_.objects.size(), kNoTime);
  result.object_body_delivered.assign(site_.objects.size(), 0);
  for (const auto& object : site_.objects) {
    result.object_body_delivered[object.id] = states_[object.id].body_delivered;
  }

  // First paint: the document plus every render-blocking resource.
  SimTime first_paint{0};
  bool paintable = true;
  for (const auto& object : site_.objects) {
    const ObjectState& state = states_[object.id];
    if (state.complete) result.object_complete_at[object.id] = state.complete_at;
    if (object.render_blocking || object.type == web::ObjectType::kHtml) {
      if (!state.complete) {
        paintable = false;
      } else {
        first_paint = std::max(first_paint, state.complete_at);
      }
    }
  }

  // Render events: weights realize at completion, but never before first paint.
  // Scratch map from the trial arena: result() runs once per trial and its
  // node churn would otherwise be the hot path's last heap consumer.
  std::map<SimTime, double, std::less<SimTime>,
           ArenaAllocator<std::pair<const SimTime, double>>>
      weight_at{ArenaAllocator<std::pair<const SimTime, double>>(simulator_.arena())};
  double total_weight = 0.0;
  for (const auto& object : site_.objects) {
    total_weight += object.render_weight;
    const ObjectState& state = states_[object.id];
    if (!state.complete || object.render_weight <= 0.0) continue;
    if (!paintable) continue;  // nothing rendered yet at all
    const SimTime effective = std::max(state.complete_at, first_paint);
    weight_at[effective] += object.render_weight;
  }

  double cumulative = 0.0;
  for (const auto& [time, weight] : weight_at) {
    cumulative += weight;
    result.vc_curve.push_back(
        VcSample{time, total_weight > 0.0 ? cumulative / total_weight : 1.0});
  }

  const bool done = completed_objects_ == site_.objects.size();
  result.metrics = compute_metrics(result.vc_curve,
                                   done ? SimDuration{page_load_end_}
                                        : SimDuration{simulator_.now()},
                                   done);
  for (const auto& [origin, session] : sessions_) result.transport += session->stats();
  return result;
}

PageLoadResult load_page(sim::Simulator& simulator, const web::Website& site,
                         PageLoader::SessionFactory factory, Rng rng,
                         SimDuration time_cap, std::uint64_t max_events) {
  PageLoader loader(simulator, site, std::move(factory), rng);
  loader.start();
  const SimTime deadline = simulator.now() + time_cap;
  const std::uint64_t events_at_start = simulator.events_processed();
  while (!loader.finished() && simulator.now() < deadline) {
    const std::uint64_t spent = simulator.events_processed() - events_at_start;
    if (spent >= max_events) break;  // event budget exhausted: report progress so far
    const SimTime next = std::min(deadline, simulator.now() + milliseconds(200));
    simulator.run_until(next, max_events - spent);
  }
  simulator.trace_event(trace::EventType::kPageFinished, trace::Endpoint::kClient,
                        /*flow=*/0, loader.completed_objects(), /*bytes=*/0,
                        loader.finished() ? 1 : 0);
  return loader.result();
}

}  // namespace qperc::browser
