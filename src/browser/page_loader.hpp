// Browser page-load engine: dependency-driven discovery, one HTTP session
// per origin, priority assignment, and the render model producing the
// visual-completeness curve (the paper's "video" of the loading process).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "browser/metrics.hpp"
#include "http/session.hpp"
#include "net/emulated_network.hpp"
#include "net/transport_stats.hpp"
#include "sim/simulator.hpp"
#include "util/arena.hpp"
#include "util/function.hpp"
#include "util/rng.hpp"
#include "web/website.hpp"

namespace qperc::browser {

struct PageLoadResult {
  PageMetrics metrics;
  std::vector<VcSample> vc_curve;
  net::TransportStats transport;
  /// Completion time per object id (kNoTime when unfinished).
  std::vector<SimTime> object_complete_at;
  /// Body bytes the HTTP layer reported delivered per object id. Conservation
  /// invariant (torture harness): exactly `object.bytes` for complete objects,
  /// at most that for incomplete ones — transport duplicates must never
  /// double-count.
  std::vector<std::uint64_t> object_body_delivered;
  std::uint32_t connections_opened = 0;
};

class PageLoader {
 public:
  /// Creates one HTTP session (H2-over-TCP or gQUIC) for an origin.
  /// SmallFunction rather than std::function: the factory is built once per
  /// trial inside TrialContext::run, and a pointer-sized capture set must
  /// never push a type-erasure allocation onto the hot path (callers capture
  /// their protocol config by reference; the config outlives the loader).
  using SessionFactory =
      SmallFunction<std::unique_ptr<http::Session>(net::ServerId origin)>;

  /// `rng` drives small behavioural jitter (per-request server think time);
  /// page loads are deterministic in (site, factory config, rng seed).
  PageLoader(sim::Simulator& simulator, const web::Website& site,
             SessionFactory session_factory, Rng rng = Rng(0));
  PageLoader(const PageLoader&) = delete;
  PageLoader& operator=(const PageLoader&) = delete;

  /// Kicks off the root document fetch.
  void start();
  [[nodiscard]] bool finished() const noexcept {
    return completed_objects_ == site_.objects.size();
  }
  [[nodiscard]] std::size_t completed_objects() const noexcept { return completed_objects_; }
  /// Collects the result; valid any time (finished flag reflects progress).
  [[nodiscard]] PageLoadResult result() const;

 private:
  struct ObjectState {
    bool requested = false;
    bool complete = false;
    std::uint64_t body_delivered = 0;
    SimTime complete_at{0};
  };

  void request_object(std::uint32_t id);
  void on_progress(std::uint32_t id, std::uint64_t body_bytes, bool complete);
  void check_discoveries(std::uint32_t parent_id);
  void on_object_complete(std::uint32_t id);
  void submit_to_session(http::Session& session, std::uint32_t id);
  /// Dispatches the request for `id`: submits on an existing session, or
  /// queues it while the browser's connection pool is saturated.
  void dispatch(std::uint32_t id);
  void open_connection(std::uint32_t origin);
  void on_connection_established();

  /// Chromium-style cap on sockets being connected concurrently; keeps the
  /// browser from slamming dozens of handshakes into the uplink in the same
  /// millisecond.
  static constexpr std::size_t kMaxConcurrentConnecting = 8;

  sim::Simulator& simulator_;
  const web::Website& site_;
  SessionFactory session_factory_;
  Rng rng_;

  /// Ordered by origin id: result() iterates to aggregate transport stats,
  /// so the order must be deterministic (see scripts/lint_determinism.py).
  /// All loader bookkeeping draws from the trial arena; the session objects
  /// themselves are the only per-origin heap allocations (their destructors
  /// still run when the map is destroyed — only node memory is arena-owned).
  std::map<std::uint32_t, std::unique_ptr<http::Session>, std::less<std::uint32_t>,
           ArenaAllocator<std::pair<const std::uint32_t, std::unique_ptr<http::Session>>>>
      sessions_;
  std::size_t connecting_ = 0;
  /// Origins waiting for a connection-pool slot, FIFO; per-origin object
  /// queues waiting for their session to exist.
  std::vector<std::uint32_t, ArenaAllocator<std::uint32_t>> waiting_origins_;
  std::map<std::uint32_t, ArenaVec<std::uint32_t>, std::less<std::uint32_t>,
           ArenaAllocator<std::pair<const std::uint32_t, ArenaVec<std::uint32_t>>>>
      queued_objects_;
  std::vector<ObjectState, ArenaAllocator<ObjectState>> states_;
  /// children_by_parent_[p] lists object ids discovered while p loads.
  std::vector<ArenaVec<std::uint32_t>, ArenaAllocator<ArenaVec<std::uint32_t>>> children_;
  std::vector<std::uint32_t, ArenaAllocator<std::uint32_t>> roots_;
  std::size_t completed_objects_ = 0;
  SimTime page_load_end_{0};
};

/// Default virtual-time safety cap for load_page.
inline constexpr SimDuration kDefaultLoadTimeCap = seconds(180);

/// Convenience: run one page load to completion (with a virtual-time safety
/// cap and a simulator-event budget) and return the result. The load stops
/// early if `max_events` simulator events fire before the page finishes.
[[nodiscard]] PageLoadResult load_page(
    sim::Simulator& simulator, const web::Website& site, PageLoader::SessionFactory factory,
    Rng rng = Rng(0), SimDuration time_cap = kDefaultLoadTimeCap,
    std::uint64_t max_events = sim::Simulator::kDefaultEventCap);

}  // namespace qperc::browser
