// Perceptual rating models: how a simulated participant turns a loading
// "video" into a 10..70 quality vote (Study 2) or an A/B choice (Study 1).
#pragma once

#include "core/video.hpp"
#include "study/participant.hpp"
#include "util/rng.hpp"

namespace qperc::study {

/// Perceived duration of a loading process, in seconds: a geometric blend of
/// the visual metrics, dominated by the Speed Index. (Human speed perception
/// follows the visual progress of the page, not the onload event — this is
/// why the paper finds SI correlating best and PLT worst, Figure 6.)
[[nodiscard]] double perceived_duration_seconds(const browser::PageMetrics& metrics);

/// Absolute quality rating on the paper's seven-point linear 10..70 scale
/// (extremely bad .. ideal), via a Weber–Fechner law with context-dependent
/// tolerance plus participant bias/noise. Cheaters answer uniformly.
[[nodiscard]] double rate_video(const core::Video& video, Context context,
                                const Participant& participant, Rng& rng);

/// Deterministic part of the rating model (no bias/noise), for tests.
[[nodiscard]] double ideal_rating(const browser::PageMetrics& metrics, Context context);

enum class AbChoice { kFirst, kNoDifference, kSecond };

struct AbVote {
  AbChoice choice = AbChoice::kNoDifference;
  /// Self-reported confidence in [0, 1].
  double confidence = 0.0;
  /// How often the participant replayed the clip.
  std::uint32_t replays = 0;
};

/// Just-noticeable-difference vote between two videos shown side by side.
[[nodiscard]] AbVote ab_vote(const core::Video& first, const core::Video& second,
                             const Participant& participant, Rng& rng);

}  // namespace qperc::study
