#include "study/rater.hpp"

#include <algorithm>
#include <cmath>

namespace qperc::study {
namespace {

/// Metric blend exponents (sum to 1): visual progress dominates.
constexpr double kSiWeight = 0.70;
constexpr double kFvcWeight = 0.20;
constexpr double kVc85Weight = 0.10;

/// Weber–Fechner slope in rating points per log-unit of waiting.
constexpr double kRatingSlope = 15.0;

/// Additive perceptual floor (seconds) for side-by-side comparisons: below
/// roughly a second, absolute differences in loading processes are hard to
/// resolve even when their ratio is large — this is why spotting differences
/// on the fast DSL network is hard (§4.3) despite sizable relative gaps.
constexpr double kPerceptionFloorSeconds = 1.25;

/// Context tolerance tau (seconds): at work people are least patient; on a
/// plane expectations are lowest.
double context_tolerance(Context context) {
  switch (context) {
    case Context::kWork: return 0.70;
    case Context::kFreeTime: return 0.85;
    case Context::kPlane: return 1.10;
  }
  return 0.8;
}

double safe_seconds(double ms) { return std::max(ms / 1000.0, 1e-3); }

}  // namespace

double perceived_duration_seconds(const browser::PageMetrics& metrics) {
  const double log_blend = kSiWeight * std::log(safe_seconds(metrics.si_ms())) +
                           kFvcWeight * std::log(safe_seconds(metrics.fvc_ms())) +
                           kVc85Weight * std::log(safe_seconds(metrics.vc85_ms()));
  return std::exp(log_blend);
}

double ideal_rating(const browser::PageMetrics& metrics, Context context) {
  // The +0.25 s offset keeps even instantaneous loads below "ideal": real
  // raters almost never award the scale's end point.
  const double perceived = perceived_duration_seconds(metrics) + 0.25;
  const double raw =
      70.0 - kRatingSlope * std::log1p(perceived / context_tolerance(context));
  return std::clamp(raw, 10.0, 70.0);
}

/// Content appeal: people cannot fully separate "how fast did it load" from
/// "how much do I like this page"; each site carries a stable rating offset.
/// This constant-variance bias weakens metric-vs-vote correlations on fast
/// networks (small metric spread) far more than on slow ones — the
/// per-column trend of Figure 6.
double site_appeal(const std::string& site_name) {
  Rng rng(fnv1a(site_name) ^ 0x5ee7a11aULL);
  return rng.normal(0.0, 4.0);
}

double rate_video(const core::Video& video, Context context,
                  const Participant& participant, Rng& rng) {
  if (participant.cheater) {
    // Voluntary (Internet) careless raters straight-line near an anchor —
    // this multimodal contamination is what breaks the group's normality
    // (§4.2) and gets it excluded from the analysis.
    if (participant.group == Group::kInternet) {
      return std::clamp(participant.cheater_anchor + rng.normal(0.0, 2.0), 10.0, 70.0);
    }
    // Paid crowd cheaters who survive the control checks were paying some
    // attention: shrunk sensitivity and doubled noise, but not uniform.
    const double lazy = 0.6 * ideal_rating(video.metrics, context) + 0.4 * 40.0;
    return std::clamp(lazy + rng.normal(0.0, 10.0), 10.0, 70.0);
  }
  const double rating = ideal_rating(video.metrics, context) + site_appeal(video.site) +
                        participant.rating_bias +
                        rng.normal(0.0, participant.vote_noise_sd);
  return std::clamp(rating, 10.0, 70.0);
}

AbVote ab_vote(const core::Video& first, const core::Video& second,
               const Participant& participant, Rng& rng) {
  AbVote vote;
  if (participant.cheater) {
    const auto pick = rng.uniform_int(0, 2);
    vote.choice = pick == 0   ? AbChoice::kFirst
                  : pick == 1 ? AbChoice::kSecond
                              : AbChoice::kNoDifference;
    vote.confidence = rng.uniform(0.0, 1.0);
    vote.replays = 0;
    return vote;
  }

  // Evidence: log ratio of floor-shifted perceived durations; positive =>
  // first is faster. The additive floor makes sub-second absolute
  // differences hard to spot regardless of their ratio.
  const double evidence =
      std::log(perceived_duration_seconds(second.metrics) + kPerceptionFloorSeconds) -
      std::log(perceived_duration_seconds(first.metrics) + kPerceptionFloorSeconds);
  const double observed = evidence + rng.normal(0.0, participant.observation_noise);

  if (std::fabs(observed) < participant.jnd) {
    vote.choice = AbChoice::kNoDifference;
  } else {
    vote.choice = observed > 0 ? AbChoice::kFirst : AbChoice::kSecond;
  }
  vote.confidence = std::clamp(std::fabs(observed) / (2.0 * participant.jnd), 0.0, 1.0);

  // Replays: the harder the call (small evidence), the more often people
  // rewind — the paper observes more replays on the fast networks (§4.2).
  const double difficulty = std::exp(-16.0 * std::fabs(evidence));
  const double lambda =
      std::clamp(3.0 * difficulty * participant.replay_scale, 0.05, 3.5);
  vote.replays = static_cast<std::uint32_t>(rng.poisson(lambda));
  return vote;
}

}  // namespace qperc::study
