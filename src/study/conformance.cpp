#include "study/conformance.hpp"

#include <algorithm>

namespace qperc::study {
namespace {

/// Extra probability that a random-clicking cheater fails a control check.
/// Applies to paid crowd workers (random answers fail the obvious control
/// video / color question most of the time). Internet straight-liners watch
/// the videos and answer controls correctly — they are merely lazy raters —
/// so the penalty does not apply to them.
constexpr double kCheaterControlPenalty = 0.55;

const std::array<double, kRuleCount>& base_rates(Group group, StudyKind kind) {
  const GroupParams& params = params_for(group);
  return kind == StudyKind::kAb ? params.rule_violation_ab : params.rule_violation_rating;
}

/// Base rate adjusted so that with `cheater_fraction` of cheaters violating
/// control rules at +penalty, the population marginal stays at `target`.
double adjusted_base(double target, double cheater_fraction) {
  const double adjusted =
      (target - kCheaterControlPenalty * cheater_fraction) / (1.0 - cheater_fraction);
  return std::clamp(adjusted, 0.0, 1.0);
}

}  // namespace

std::string_view rule_name(std::size_t rule) {
  static constexpr std::array<std::string_view, kRuleCount> names = {"R1", "R2", "R3", "R4",
                                                                     "R5", "R6", "R7"};
  return rule < kRuleCount ? names[rule] : "?";
}

std::string_view rule_description(std::size_t rule) {
  static constexpr std::array<std::string_view, kRuleCount> descriptions = {
      "video not played",
      "video stalled",
      "focus loss > 10 s",
      "vote before FVC",
      "study > 25 min / question > 2 min",
      "control video answered wrong",
      "control question answered wrong",
  };
  return rule < kRuleCount ? descriptions[rule] : "?";
}

std::optional<std::size_t> sample_violation(StudyKind kind, const Participant& participant,
                                            Rng& rng) {
  const GroupParams& params = params_for(participant.group);
  const auto& rates = base_rates(participant.group, kind);
  const bool penalized_group = participant.group == Group::kMicroworker;
  for (std::size_t rule = 0; rule < kRuleCount; ++rule) {
    double probability = rates[rule];
    // Control checks (R6, R7) catch random clickers disproportionately.
    if (rule >= 5 && penalized_group && params.cheater_fraction > 0.0) {
      probability = adjusted_base(probability, params.cheater_fraction);
      if (participant.cheater) probability += kCheaterControlPenalty;
    }
    if (rng.bernoulli(probability)) return rule;
  }
  return std::nullopt;
}

FunnelResult simulate_funnel(Group group, StudyKind kind, std::size_t initial, Rng rng) {
  FunnelResult result;
  result.initial = initial;
  std::array<std::size_t, kRuleCount> removed_at{};
  for (std::size_t i = 0; i < initial; ++i) {
    // Identity-derived stream: participant i's traits and violations are a
    // pure function of (rng state, i), never of how many draws earlier
    // participants consumed. A shared sequential stream here would make
    // every participant's outcome depend on the processing order — the
    // shard-layout bug the streaming engine's determinism tests guard
    // against (see participant_stream).
    Rng participant_rng = rng.fork(i + 1);
    Participant participant = sample_participant(group, participant_rng);
    if (const auto rule = sample_violation(kind, participant, participant_rng)) {
      ++removed_at[*rule];
    }
  }
  std::size_t survivors = initial;
  for (std::size_t rule = 0; rule < kRuleCount; ++rule) {
    survivors -= removed_at[rule];
    result.after_rule[rule] = survivors;
  }
  return result;
}

std::size_t paper_initial_cohort(Group group, StudyKind kind) {
  switch (group) {
    case Group::kLab: return 35;
    case Group::kMicroworker: return kind == StudyKind::kAb ? 487 : 1563;
    case Group::kInternet: return kind == StudyKind::kAb ? 218 : 209;
  }
  return 0;
}

}  // namespace qperc::study
