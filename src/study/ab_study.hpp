// Study 1 (A/B, §4): just-noticeable-difference test. Two recordings of the
// same website over the same network but different protocol stacks play side
// by side; participants answer "left faster / right faster / no difference"
// plus a confidence rating.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/video.hpp"
#include "study/conformance.hpp"
#include "study/participant.hpp"
#include "study/rater.hpp"

namespace qperc::study {

/// The four protocol pairs of Figure 4, in its order. The first element is
/// the "supposedly faster" variant.
[[nodiscard]] const std::vector<std::pair<std::string, std::string>>& ab_pairs();

/// Aggregated votes for one (pair, network) cell of Figure 4.
struct AbAggregate {
  std::uint64_t prefer_first = 0;
  std::uint64_t no_difference = 0;
  std::uint64_t prefer_second = 0;
  double replay_sum = 0.0;
  double confidence_sum = 0.0;

  [[nodiscard]] std::uint64_t total() const {
    return prefer_first + no_difference + prefer_second;
  }
  [[nodiscard]] double share_first() const {
    return total() ? static_cast<double>(prefer_first) / static_cast<double>(total()) : 0.0;
  }
  [[nodiscard]] double share_no_difference() const {
    return total() ? static_cast<double>(no_difference) / static_cast<double>(total()) : 0.0;
  }
  [[nodiscard]] double share_second() const {
    return total() ? static_cast<double>(prefer_second) / static_cast<double>(total()) : 0.0;
  }
  [[nodiscard]] double avg_replays() const {
    return total() ? replay_sum / static_cast<double>(total()) : 0.0;
  }
};

struct AbStudyConfig {
  Group group = Group::kMicroworker;
  /// Participants entering the study (pre-filter); defaults to Table 3.
  std::size_t initial_participants = 0;
  /// Videos (pairs) shown per participant: 28 lab / 26 uWorker / 14 Internet.
  std::size_t videos_per_participant = 26;
  /// Restrict the stimulus pool to the lab's five domains.
  bool lab_domains_only = false;
  std::uint64_t seed = 1;
};

struct AbStudyResult {
  FunnelResult funnel;
  /// Cell key: (pair index into ab_pairs(), network).
  std::map<std::pair<std::size_t, net::NetworkKind>, AbAggregate> cells;
  /// Per-site detail: ((pair index, network), site) -> aggregate.
  std::map<std::tuple<std::size_t, net::NetworkKind, std::string>, AbAggregate> by_site;
  double avg_seconds_per_video = 0.0;
};

/// Runs the A/B study against a (shared) video library.
[[nodiscard]] AbStudyResult run_ab_study(core::VideoLibrary& library,
                                         const AbStudyConfig& config);

}  // namespace qperc::study
