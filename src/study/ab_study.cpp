#include "study/ab_study.hpp"

#include <algorithm>
#include <array>
#include <numeric>

#include "net/profile.hpp"
#include "web/website.hpp"

namespace qperc::study {

const std::vector<std::pair<std::string, std::string>>& ab_pairs() {
  static const std::vector<std::pair<std::string, std::string>> pairs = {
      {"TCP+", "TCP"},
      {"QUIC", "TCP"},
      {"QUIC", "TCP+"},
      {"QUIC+BBR", "TCP+BBR"},
  };
  return pairs;
}

AbStudyResult run_ab_study(core::VideoLibrary& library, const AbStudyConfig& config) {
  AbStudyResult result;
  Rng rng = Rng(config.seed).fork("ab-study").fork(static_cast<std::uint64_t>(config.group));

  const std::size_t initial = config.initial_participants > 0
                                  ? config.initial_participants
                                  : paper_initial_cohort(config.group, StudyKind::kAb);

  // Stimulus pool: (pair, network, site).
  std::vector<std::string> site_names;
  if (config.lab_domains_only) {
    site_names = web::lab_study_domains();
  } else {
    for (const auto& site : library.catalog()) site_names.push_back(site.name);
  }
  struct Condition {
    std::size_t pair_index;
    net::NetworkKind network;
    std::string site;
  };
  std::vector<Condition> pool;
  for (std::size_t p = 0; p < ab_pairs().size(); ++p) {
    for (const auto& profile : net::all_profiles()) {
      for (const auto& site : site_names) {
        pool.push_back(Condition{p, profile.kind, site});
      }
    }
  }

  result.funnel.initial = initial;
  std::array<std::size_t, kRuleCount> removed_at{};
  double seconds_sum = 0.0;
  std::size_t seconds_n = 0;
  const GroupParams& params = params_for(config.group);

  for (std::size_t i = 0; i < initial; ++i) {
    Rng participant_rng = rng.fork(i + 1);
    Participant participant = sample_participant(config.group, participant_rng);
    if (const auto rule = sample_violation(StudyKind::kAb, participant, participant_rng)) {
      ++removed_at[*rule];
      continue;
    }

    // Random assignment without replacement: a partial Fisher–Yates shuffle.
    std::vector<std::size_t> order(pool.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    const std::size_t shown = std::min(config.videos_per_participant, pool.size());
    for (std::size_t k = 0; k < shown; ++k) {
      const auto j = static_cast<std::size_t>(
          participant_rng.uniform_int(static_cast<std::int64_t>(k),
                                      static_cast<std::int64_t>(order.size() - 1)));
      std::swap(order[k], order[j]);
      const Condition& condition = pool[order[k]];
      const auto& [proto_a, proto_b] = ab_pairs()[condition.pair_index];
      const core::Video& video_a = library.get(condition.site, proto_a, condition.network);
      const core::Video& video_b = library.get(condition.site, proto_b, condition.network);

      // Left/right randomization; map the answer back to the protocol pair.
      const bool swapped = participant_rng.bernoulli(0.5);
      const AbVote vote = swapped ? ab_vote(video_b, video_a, participant, participant_rng)
                                  : ab_vote(video_a, video_b, participant, participant_rng);
      AbChoice choice = vote.choice;
      if (swapped) {
        if (choice == AbChoice::kFirst) {
          choice = AbChoice::kSecond;
        } else if (choice == AbChoice::kSecond) {
          choice = AbChoice::kFirst;
        }
      }

      const auto apply = [&](AbAggregate& cell) {
        if (choice == AbChoice::kFirst) {
          ++cell.prefer_first;
        } else if (choice == AbChoice::kSecond) {
          ++cell.prefer_second;
        } else {
          ++cell.no_difference;
        }
        cell.replay_sum += vote.replays;
        cell.confidence_sum += vote.confidence;
      };
      apply(result.cells[{condition.pair_index, condition.network}]);
      apply(result.by_site[{condition.pair_index, condition.network, condition.site}]);

      seconds_sum += participant_rng.normal(params.seconds_per_video_ab, 3.0);
      ++seconds_n;
    }
  }

  std::size_t survivors = initial;
  for (std::size_t rule = 0; rule < kRuleCount; ++rule) {
    survivors -= removed_at[rule];
    result.funnel.after_rule[rule] = survivors;
  }
  result.avg_seconds_per_video = seconds_n ? seconds_sum / static_cast<double>(seconds_n) : 0.0;
  return result;
}

}  // namespace qperc::study
