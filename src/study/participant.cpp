#include "study/participant.hpp"

#include <algorithm>
#include <stdexcept>

namespace qperc::study {

std::string_view to_string(Group group) {
  switch (group) {
    case Group::kLab: return "Lab";
    case Group::kMicroworker: return "uWorker";
    case Group::kInternet: return "Internet";
  }
  return "?";
}

std::string_view to_string(Context context) {
  switch (context) {
    case Context::kWork: return "At Work";
    case Context::kFreeTime: return "Free Time";
    case Context::kPlane: return "On a plane";
  }
  return "?";
}

const GroupParams& params_for(Group group) {
  // Rule-violation rates are calibrated against Table 3's sequential funnel
  // (share removed at each rule among those reaching it). The lab cohort is
  // supervised: nobody is filtered.
  static const GroupParams lab = {
      .vote_noise_sd = 4.0,
      .bias_sd = 3.5,
      .observation_noise = 0.030,
      .jnd_mean = 0.045,
      .jnd_sd = 0.015,
      .cheater_fraction = 0.0,
      .replay_scale = 1.25,
      .seconds_per_video_ab = 17.7,
      .seconds_per_video_rating = 21.4,
      .rule_violation_ab = {0, 0, 0, 0, 0, 0, 0},
      .rule_violation_rating = {0, 0, 0, 0, 0, 0, 0},
  };
  static const GroupParams microworker = {
      .vote_noise_sd = 6.5,
      .bias_sd = 4.5,
      .observation_noise = 0.040,
      .jnd_mean = 0.050,
      .jnd_sd = 0.018,
      .cheater_fraction = 0.08,
      .replay_scale = 0.8,
      .seconds_per_video_ab = 14.5,
      .seconds_per_video_rating = 17.7,
      .rule_violation_ab = {0.033, 0.064, 0.195, 0.245, 0.002, 0.108, 0.025},
      .rule_violation_rating = {0.044, 0.116, 0.217, 0.291, 0.014, 0.086, 0.071},
  };
  static const GroupParams internet = {
      .vote_noise_sd = 8.5,
      .bias_sd = 6.0,
      .observation_noise = 0.050,
      .jnd_mean = 0.055,
      .jnd_sd = 0.020,
      .cheater_fraction = 0.18,  // heavy-tailed voluntary crowd => non-normal votes
      .replay_scale = 0.9,
      .seconds_per_video_ab = 15.6,
      .seconds_per_video_rating = 19.2,
      .rule_violation_ab = {0.005, 0.032, 0.067, 0.128, 0.006, 0.065, 0.025},
      .rule_violation_rating = {0.024, 0.049, 0.113, 0.116, 0.007, 0.073, 0.014},
  };
  switch (group) {
    case Group::kLab: return lab;
    case Group::kMicroworker: return microworker;
    case Group::kInternet: return internet;
  }
  throw std::invalid_argument("unknown group");
}

Participant sample_participant(Group group, Rng& rng) {
  const GroupParams& params = params_for(group);
  Participant participant;
  participant.group = group;
  participant.rating_bias = rng.normal(0.0, params.bias_sd);
  participant.vote_noise_sd =
      std::max(1.0, rng.normal(params.vote_noise_sd, params.vote_noise_sd * 0.25));
  participant.observation_noise =
      std::max(0.01, rng.normal(params.observation_noise, params.observation_noise * 0.3));
  participant.jnd = std::max(0.015, rng.normal(params.jnd_mean, params.jnd_sd));
  participant.cheater = rng.bernoulli(params.cheater_fraction);
  participant.cheater_anchor = rng.uniform(10.0, 70.0);
  participant.replay_scale =
      std::max(0.1, rng.normal(params.replay_scale, params.replay_scale * 0.3));
  return participant;
}

Rng participant_stream(std::uint64_t study_seed, std::uint64_t participant_id) {
  return Rng(study_seed).fork("participant").fork(participant_id);
}

}  // namespace qperc::study
