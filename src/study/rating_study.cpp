#include "study/rating_study.hpp"

#include <algorithm>
#include <array>
#include <numeric>

#include "core/protocol.hpp"
#include "net/profile.hpp"
#include "web/website.hpp"

namespace qperc::study {

const std::vector<net::NetworkKind>& networks_for_context(Context context) {
  static const std::vector<net::NetworkKind> fast = {net::NetworkKind::kDsl,
                                                     net::NetworkKind::kLte};
  static const std::vector<net::NetworkKind> plane = {net::NetworkKind::kDa2gc,
                                                      net::NetworkKind::kMss};
  return context == Context::kPlane ? plane : fast;
}

RatingStudyResult run_rating_study(core::VideoLibrary& library,
                                   const RatingStudyConfig& config) {
  RatingStudyResult result;
  Rng rng =
      Rng(config.seed).fork("rating-study").fork(static_cast<std::uint64_t>(config.group));

  const std::size_t initial = config.initial_participants > 0
                                  ? config.initial_participants
                                  : paper_initial_cohort(config.group, StudyKind::kRating);

  std::vector<std::string> site_names;
  if (config.lab_domains_only) {
    site_names = web::lab_study_domains();
  } else {
    for (const auto& site : library.catalog()) site_names.push_back(site.name);
  }

  struct Condition {
    std::string site;
    std::string protocol;
    net::NetworkKind network;
  };
  const auto pool_for = [&](Context context) {
    std::vector<Condition> pool;
    for (const auto& site : site_names) {
      for (const auto& protocol : core::paper_protocols()) {
        for (const auto network : networks_for_context(context)) {
          pool.push_back(Condition{site, protocol.name, network});
        }
      }
    }
    return pool;
  };
  const std::array<std::pair<Context, std::size_t>, 3> blocks = {
      std::pair{Context::kWork, config.videos_work},
      std::pair{Context::kFreeTime, config.videos_free_time},
      std::pair{Context::kPlane, config.videos_plane},
  };
  const auto work_pool = pool_for(Context::kWork);
  const auto plane_pool = pool_for(Context::kPlane);

  result.funnel.initial = initial;
  std::array<std::size_t, kRuleCount> removed_at{};
  double seconds_sum = 0.0;
  std::size_t seconds_n = 0;
  const GroupParams& params = params_for(config.group);

  for (std::size_t i = 0; i < initial; ++i) {
    Rng participant_rng = rng.fork(i + 1);
    Participant participant = sample_participant(config.group, participant_rng);
    if (const auto rule =
            sample_violation(StudyKind::kRating, participant, participant_rng)) {
      ++removed_at[*rule];
      continue;
    }

    for (const auto& [context, count] : blocks) {
      const auto& pool = context == Context::kPlane ? plane_pool : work_pool;
      std::vector<std::size_t> order(pool.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      const std::size_t shown = std::min(count, pool.size());
      for (std::size_t k = 0; k < shown; ++k) {
        const auto j = static_cast<std::size_t>(
            participant_rng.uniform_int(static_cast<std::int64_t>(k),
                                        static_cast<std::int64_t>(order.size() - 1)));
        std::swap(order[k], order[j]);
        const Condition& condition = pool[order[k]];
        const core::Video& video =
            library.get(condition.site, condition.protocol, condition.network);
        const double vote = rate_video(video, context, participant, participant_rng);

        result.votes_by_cell[{condition.protocol, condition.network, context}].push_back(
            vote);
        result
            .votes_by_site[{condition.site, condition.protocol, condition.network, context}]
            .push_back(vote);
        seconds_sum += participant_rng.normal(params.seconds_per_video_rating, 3.0);
        ++seconds_n;
      }
    }
  }

  std::size_t survivors = initial;
  for (std::size_t rule = 0; rule < kRuleCount; ++rule) {
    survivors -= removed_at[rule];
    result.funnel.after_rule[rule] = survivors;
  }
  result.avg_seconds_per_video =
      seconds_n ? seconds_sum / static_cast<double>(seconds_n) : 0.0;
  return result;
}

}  // namespace qperc::study
