// The seven-rule conformance filter of §4.1 and its Table-3 funnel.
//
// R1 video not played · R2 video stalled · R3 focus lost >10 s ·
// R4 vote before FVC · R5 study >25 min or question >2 min ·
// R6 control video answered wrong · R7 control question answered wrong.
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <string_view>

#include "study/participant.hpp"
#include "util/rng.hpp"

namespace qperc::study {

inline constexpr std::size_t kRuleCount = 7;

[[nodiscard]] std::string_view rule_name(std::size_t rule);
[[nodiscard]] std::string_view rule_description(std::size_t rule);

/// Samples whether (and at which rule) a participant's session is removed.
/// Rules are evaluated in order; the first violation is reported.
/// Cheaters fail the control checks (R6/R7) at an elevated rate; the base
/// rates are adjusted so the population marginals match Table 3.
[[nodiscard]] std::optional<std::size_t> sample_violation(StudyKind kind,
                                                          const Participant& participant,
                                                          Rng& rng);

/// Table-3 row: survivor counts after each rule, applied sequentially.
struct FunnelResult {
  std::size_t initial = 0;
  std::array<std::size_t, kRuleCount> after_rule{};
  [[nodiscard]] std::size_t final_count() const { return after_rule[kRuleCount - 1]; }
};

[[nodiscard]] FunnelResult simulate_funnel(Group group, StudyKind kind, std::size_t initial,
                                           Rng rng);

/// The paper's observed cohort sizes (Table 3, first column).
[[nodiscard]] std::size_t paper_initial_cohort(Group group, StudyKind kind);

}  // namespace qperc::study
