// Study 2 (Rating, §4): single-stimulus quality assessment. Participants
// watch one loading recording at a time and rate satisfaction with the
// loading speed on the seven-point linear 10..70 scale, framed in one of
// three contexts: at work, in their free time (DSL/LTE videos), or on a
// plane (DA2GC/MSS videos).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "core/video.hpp"
#include "study/conformance.hpp"
#include "study/participant.hpp"
#include "study/rater.hpp"

namespace qperc::study {

/// (protocol, network, context) — one bar of Figure 5.
using RatingCellKey = std::tuple<std::string, net::NetworkKind, Context>;
/// (site, protocol, network, context) — §4.4 / Figure 6 granularity.
using RatingSiteKey = std::tuple<std::string, std::string, net::NetworkKind, Context>;

struct RatingStudyConfig {
  Group group = Group::kMicroworker;
  std::size_t initial_participants = 0;  // 0 => Table 3 cohort
  /// Videos per context block: lab/uWorker 11+11+5, Internet 6+6+3.
  std::size_t videos_work = 11;
  std::size_t videos_free_time = 11;
  std::size_t videos_plane = 5;
  bool lab_domains_only = false;
  std::uint64_t seed = 1;
};

struct RatingStudyResult {
  FunnelResult funnel;
  std::map<RatingCellKey, std::vector<double>> votes_by_cell;
  std::map<RatingSiteKey, std::vector<double>> votes_by_site;
  double avg_seconds_per_video = 0.0;
};

[[nodiscard]] RatingStudyResult run_rating_study(core::VideoLibrary& library,
                                                 const RatingStudyConfig& config);

/// Networks shown in a context block (work/free time: DSL+LTE; plane:
/// DA2GC+MSS).
[[nodiscard]] const std::vector<net::NetworkKind>& networks_for_context(Context context);

}  // namespace qperc::study
