// Simulated study participants.
//
// The paper recruits three subject groups (§4.1): a supervised lab cohort,
// paid Microworkers, and voluntary Internet users. Humans cannot be shipped
// in a library, so each participant is a psychometric model: a Weber–Fechner
// rater with per-person bias/noise, a just-noticeable-difference threshold
// for A/B comparisons, and latent inattentiveness/cheating traits that
// generate the rule violations the conformance filter (Table 3) removes.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "util/rng.hpp"

namespace qperc::study {

enum class Group { kLab, kMicroworker, kInternet };
enum class Context { kWork, kFreeTime, kPlane };
enum class StudyKind { kAb, kRating };

[[nodiscard]] std::string_view to_string(Group group);
[[nodiscard]] std::string_view to_string(Context context);

/// Group-level behaviour parameters, calibrated so the filter funnel matches
/// Table 3 and the group agreement matches Figure 3.
struct GroupParams {
  /// Stddev of per-vote rating noise (points on the 10..70 scale).
  double vote_noise_sd = 6.0;
  /// Stddev of the per-person systematic rating offset.
  double bias_sd = 4.0;
  /// Observation noise on the log perceptual difference in A/B trials.
  double observation_noise = 0.08;
  /// Just-noticeable difference on log perceived-duration ratio.
  double jnd_mean = 0.10;
  double jnd_sd = 0.035;
  /// Fraction of participants who click through randomly.
  double cheater_fraction = 0.0;
  /// Scales the replay-count model.
  double replay_scale = 1.0;
  /// Mean seconds spent per video (§4.2 reports these per group).
  double seconds_per_video_ab = 16.0;
  double seconds_per_video_rating = 19.0;
  /// Per-rule violation probabilities for an attentive participant,
  /// R1..R7 in order, per study kind.
  std::array<double, 7> rule_violation_ab{};
  std::array<double, 7> rule_violation_rating{};
};

[[nodiscard]] const GroupParams& params_for(Group group);

/// One sampled participant.
struct Participant {
  Group group = Group::kLab;
  double rating_bias = 0.0;
  double vote_noise_sd = 6.0;
  double observation_noise = 0.08;
  double jnd = 0.10;
  bool cheater = false;
  /// Straight-liner anchor: careless voluntary participants park the slider
  /// near one position; paid crowd cheaters click around randomly.
  double cheater_anchor = 40.0;
  double replay_scale = 1.0;
};

[[nodiscard]] Participant sample_participant(Group group, Rng& rng);

/// Identity-derived per-participant RNG stream: a pure function of
/// (study_seed, participant_id), never of thread, shard, or enumeration
/// order — the same trick as core::condition_base_seed. Every execution
/// layout (sequential loop, worker pool, multi-process shards) that samples
/// participant `id` from this stream observes the same traits, violations,
/// and votes, which is what makes population-scale results bit-identical
/// regardless of how the work was partitioned.
[[nodiscard]] Rng participant_stream(std::uint64_t study_seed,
                                     std::uint64_t participant_id);

}  // namespace qperc::study
