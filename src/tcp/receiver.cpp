#include "tcp/receiver.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace qperc::tcp {
namespace {

/// Linux delayed-ACK timeout.
constexpr SimDuration kDelayedAckTimeout = milliseconds(40);

}  // namespace

TcpReceiver::TcpReceiver(sim::Simulator& simulator, const TcpConfig& config,
                         std::uint64_t rwnd_limit_bytes, SmallFunction<void()> send_ack_now,
                         SmallFunction<void(std::uint64_t)> on_delivered)
    : simulator_(simulator),
      config_(config),
      send_ack_now_(std::move(send_ack_now)),
      on_delivered_(std::move(on_delivered)),
      ooo_ranges_(ArenaAllocator<std::pair<const std::uint64_t, std::uint64_t>>(
          simulator.arena())),
      recency_(ArenaAllocator<std::uint64_t>(simulator.arena())),
      rwnd_limit_(rwnd_limit_bytes),
      autotuning_(!config.tuned_buffers),
      delayed_ack_timer_(simulator, [this] { send_ack_now_(); }) {}

std::uint64_t TcpReceiver::advertised_window() const {
  // The application drains delivered bytes immediately; only buffered
  // out-of-order data occupies the window.
  std::uint64_t buffered = 0;
  for (const auto& [start, end] : ooo_ranges_) buffered += end - start;
  return buffered >= rwnd_limit_ ? 0 : rwnd_limit_ - buffered;
}

void TcpReceiver::autotune(std::uint64_t newly_delivered) {
  if (!autotuning_ || rwnd_limit_ >= config_.autotune_max_rwnd_bytes) return;
  // Linux dynamic right-sizing doubles the window whenever a full window's
  // worth of data is consumed within the measurement period; delivery volume
  // is the equivalent trigger at simulation granularity.
  autotune_delivered_marker_ += newly_delivered;
  if (autotune_delivered_marker_ >= rwnd_limit_) {
    autotune_delivered_marker_ = 0;
    rwnd_limit_ = std::min(rwnd_limit_ * 2, config_.autotune_max_rwnd_bytes);
  }
}

void TcpReceiver::on_data(std::uint64_t seq, std::uint32_t payload_bytes) {
  if (simulator_.trace() != nullptr) {
    simulator_.trace_event(trace::EventType::kPacketReceived, trace_endpoint_, trace_flow_,
                           seq, payload_bytes, /*value=*/seq + payload_bytes <= rcv_nxt_);
  }
  const std::uint64_t end = seq + payload_bytes;
  if (end <= rcv_nxt_) {
    // Spurious retransmission of fully delivered data: re-ACK immediately so
    // the sender can clean up.
    schedule_ack(/*immediate=*/true);
    return;
  }
  const std::uint64_t old_rcv_nxt = rcv_nxt_;
  bool out_of_order = false;

  if (seq <= rcv_nxt_) {
    rcv_nxt_ = std::max(rcv_nxt_, end);
    // Absorb any now-contiguous out-of-order ranges.
    auto it = ooo_ranges_.begin();
    while (it != ooo_ranges_.end() && it->first <= rcv_nxt_) {
      rcv_nxt_ = std::max(rcv_nxt_, it->second);
      std::erase(recency_, it->first);
      it = ooo_ranges_.erase(it);
    }
  } else {
    out_of_order = true;
    // Merge [seq, end) into the out-of-order set.
    std::uint64_t new_start = seq;
    std::uint64_t new_end = end;
    auto it = ooo_ranges_.lower_bound(seq);
    if (it != ooo_ranges_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= seq) {
        new_start = prev->first;
        new_end = std::max(new_end, prev->second);
        std::erase(recency_, prev->first);
        ooo_ranges_.erase(prev);
      }
    }
    it = ooo_ranges_.lower_bound(new_start);
    while (it != ooo_ranges_.end() && it->first <= new_end) {
      new_end = std::max(new_end, it->second);
      std::erase(recency_, it->first);
      it = ooo_ranges_.erase(it);
    }
    ooo_ranges_[new_start] = new_end;
    recency_.insert(recency_.begin(), new_start);
  }

  QPERC_DCHECK_GE(rcv_nxt_, old_rcv_nxt) << "RCV.NXT moved backwards";
  QPERC_DCHECK(ooo_ranges_.empty() || ooo_ranges_.begin()->first > rcv_nxt_)
      << "out-of-order range at or below RCV.NXT survived absorption";
  QPERC_DCHECK_EQ(recency_.size(), ooo_ranges_.size())
      << "SACK recency list out of sync with the range set";
  if (rcv_nxt_ > old_rcv_nxt) {
    autotune(rcv_nxt_ - old_rcv_nxt);
    on_delivered_(rcv_nxt_);
  }

  // ACK policy: immediately on out-of-order data or when a hole was just
  // filled; otherwise every second full-sized segment, else delayed.
  const bool filled_hole = seq <= old_rcv_nxt && !ooo_ranges_.empty();
  const bool was_reordered = out_of_order || filled_hole || rcv_nxt_ < seq;
  if (payload_bytes >= config_.mss) ++full_packets_since_ack_;
  schedule_ack(was_reordered || !ooo_ranges_.empty() || full_packets_since_ack_ >= 2);
}

void TcpReceiver::schedule_ack(bool immediate) {
  if (immediate) {
    send_ack_now_();
    return;
  }
  if (!delayed_ack_timer_.is_armed()) delayed_ack_timer_.set_in(kDelayedAckTimeout);
}

void TcpReceiver::fill_ack(TcpSegment& segment) {
  segment.has_ack = true;
  segment.cumulative_ack = rcv_nxt_;
  segment.receive_window_bytes = advertised_window();
  segment.sack_count = 0;
  for (const std::uint64_t start : recency_) {
    if (segment.sack_count >= kMaxSackBlocks) break;
    const auto it = ooo_ranges_.find(start);
    if (it == ooo_ranges_.end()) continue;
    // Every advertised block must be a real, non-empty range strictly above
    // the cumulative ACK; blocks are disjoint because ooo_ranges_ is.
    QPERC_DCHECK_LT(it->first, it->second);
    QPERC_DCHECK_GT(it->first, segment.cumulative_ack);
    segment.sack_blocks[segment.sack_count++] = SackBlock{it->first, it->second};
  }
  QPERC_DCHECK_LE(segment.receive_window_bytes, rwnd_limit_);
  full_packets_since_ack_ = 0;
  delayed_ack_timer_.cancel();
}

}  // namespace qperc::tcp
