#include "tcp/connection.hpp"

#include <algorithm>
#include <utility>

namespace qperc::tcp {
namespace {

constexpr std::uint32_t kSynWireBytes = 66;
constexpr std::uint32_t kClientHelloWireBytes = 350;
/// TLS ServerHello + certificate chain + Finished: ~4.3 KB in three packets.
constexpr std::array<std::uint32_t, 3> kServerFlightWireBytes = {1500, 1500, 1360};
constexpr SimDuration kInitialHandshakeTimeout = seconds(1);

std::uint64_t client_rwnd_for(const net::NetworkProfile& profile, const TcpConfig& config) {
  return config.tuned_buffers ? tuned_rwnd_bytes(profile.downlink_bdp_bytes())
                              : config.autotune_initial_rwnd_bytes;
}

std::uint64_t server_rwnd_for(const net::NetworkProfile& profile, const TcpConfig& config) {
  const std::uint64_t up_bdp =
      std::max<std::uint64_t>(bdp_bytes(profile.uplink, profile.min_rtt), 4 * net::kMtuBytes);
  return config.tuned_buffers ? tuned_rwnd_bytes(up_bdp) : config.autotune_initial_rwnd_bytes;
}

}  // namespace

TcpConnection::TcpConnection(sim::Simulator& simulator, net::EmulatedNetwork& network,
                             net::ServerId server, const TcpConfig& config,
                             Callbacks callbacks)
    : simulator_(simulator),
      network_(network),
      server_(server),
      config_(config),
      callbacks_(std::move(callbacks)),
      flow_(network.allocate_flow_id()),
      // Send buffers: large enough to never starve the congestion window,
      // small enough that the HTTP/2 scheduler (not the socket) decides
      // interleaving.
      client_sender_(simulator_, config_, /*sndbuf_bytes=*/256 * 1024,
                     [this](TcpSegment s) { client_emit(std::move(s)); }),
      server_sender_(simulator_, config_,
                     tuned_rwnd_bytes(network.profile().downlink_bdp_bytes()) + 64 * 1024,
                     [this](TcpSegment s) { server_emit(std::move(s)); }),
      client_receiver_(
          simulator_, config_, client_rwnd_for(network.profile(), config),
          [this] {
            TcpSegment ack;
            client_emit(std::move(ack));
          },
          [this](std::uint64_t total) {
            if (callbacks_.on_response_bytes) callbacks_.on_response_bytes(total);
          }),
      server_receiver_(
          simulator_, config_, server_rwnd_for(network.profile(), config),
          [this] {
            TcpSegment ack;
            server_emit(std::move(ack));
          },
          [this](std::uint64_t total) {
            if (callbacks_.on_request_bytes) callbacks_.on_request_bytes(total);
          }),
      client_hs_timer_(simulator, [this] { on_client_handshake_timeout(); }) {
  const auto trace_flow = static_cast<std::uint64_t>(flow_);
  client_sender_.set_trace_context(trace_flow, trace::Endpoint::kClient);
  server_sender_.set_trace_context(trace_flow, trace::Endpoint::kServer);
  client_receiver_.set_trace_context(trace_flow, trace::Endpoint::kClient);
  server_receiver_.set_trace_context(trace_flow, trace::Endpoint::kServer);

  network_.register_client_flow(flow_, [this](net::Packet p) { client_on_packet(p); });
  network_.register_server_flow(flow_, [this](net::Packet p) { server_on_packet(p); });
}

TcpConnection::~TcpConnection() {
  network_.unregister_client_flow(flow_);
  network_.unregister_server_flow(flow_);
}

void TcpConnection::connect() {
  if (client_hs_ != ClientHsState::kIdle) return;
  syn_sent_at_ = simulator_.now();
  simulator_.trace_event(trace::EventType::kHandshakeStarted, trace::Endpoint::kClient,
                         static_cast<std::uint64_t>(flow_), config_.handshake_rtts);
  switch (config_.handshake_rtts) {
    case 0:
      // TFO + TLS early-data (repeat visit with cached cookie/ticket): the
      // request rides with the SYN. Replay-attack caveats apply (§3). The
      // CH keeps retransmitting until the server is heard from (the SYN
      // retransmission of real TFO).
      send_handshake(/*from_client=*/true, HandshakeStep::kClientHello);
      complete_client_handshake();
      client_hs_timer_.set_in(client_handshake_rto());
      break;
    case 1:
      // TFO with a cached cookie: the ClientHello accompanies the SYN and
      // the server's TLS flight returns in one round trip. A repeat visitor
      // also cached the path RTT, so the retransmission timer is tight.
      client_hs_ = ClientHsState::kHelloSent;
      send_handshake(/*from_client=*/true, HandshakeStep::kClientHello);
      client_hs_timer_.set_in(client_handshake_rto());
      break;
    default:
      // Fresh connection (the paper's study setting): SYN / SYN-ACK, then
      // the TLS exchange — two round trips before the request leaves.
      client_hs_ = ClientHsState::kSynSent;
      send_handshake(/*from_client=*/true, HandshakeStep::kSyn);
      client_hs_timer_.set_in(kInitialHandshakeTimeout);
      break;
  }
}

void TcpConnection::send_handshake(bool from_client, HandshakeStep step,
                                   std::uint8_t have_mask) {
  const auto emit = [&](std::uint32_t wire, std::uint8_t index, std::uint8_t flight_size) {
    auto* segment = simulator_.arena().create<TcpSegment>();
    segment->handshake = step;
    segment->flight_have_mask = have_mask;
    segment->flight_index = index;
    segment->flight_size = flight_size;
    net::Packet packet;
    packet.flow = flow_;
    packet.dest_server = server_;
    packet.wire_bytes = wire;
    packet.payload = segment;
    ++handshake_stats_.handshake_packets;
    simulator_.trace_event(trace::EventType::kHandshakePacketSent,
                           from_client ? trace::Endpoint::kClient : trace::Endpoint::kServer,
                           static_cast<std::uint64_t>(flow_),
                           static_cast<std::uint64_t>(step), wire);
    if (from_client) {
      network_.client_send(std::move(packet));
    } else {
      network_.server_send(std::move(packet));
    }
  };
  switch (step) {
    case HandshakeStep::kSyn:
    case HandshakeStep::kSynAck:
      emit(kSynWireBytes, 0, 1);
      break;
    case HandshakeStep::kClientHello:
      emit(kClientHelloWireBytes, 0, 1);
      break;
    case HandshakeStep::kServerFlight:
      // Resend only the pieces the client reports missing (selective flight
      // retransmission): behind a token-bucket policer the full flight may
      // never fit through at once.
      for (std::uint8_t i = 0; i < kServerFlightWireBytes.size(); ++i) {
        if (have_mask & (1u << i)) continue;
        emit(kServerFlightWireBytes[i], i,
             static_cast<std::uint8_t>(kServerFlightWireBytes.size()));
      }
      break;
    case HandshakeStep::kNone:
      break;
  }
}

/// RTO for handshake steps after the SYN/SYN-ACK exchange measured the path:
/// Linux retransmits with an RTT-derived RTO (min 200 ms), not the 1 s
/// initial-SYN timer.
SimDuration TcpConnection::client_handshake_rto() const {
  if (client_hs_rtt_ <= SimDuration::zero()) {
    // A TFO/0-RTT client visited before and cached the path RTT.
    if (config_.handshake_rtts <= 1) {
      return std::max<SimDuration>(3 * network_.profile().min_rtt, milliseconds(100));
    }
    return kInitialHandshakeTimeout;
  }
  return std::max<SimDuration>(3 * client_hs_rtt_, milliseconds(200));
}

void TcpConnection::on_client_handshake_timeout() {
  if (client_hs_ == ClientHsState::kDone) {
    // 0-RTT mode: keep nudging the server until anything comes back.
    if (!client_heard_from_server_) {
      ++handshake_stats_.handshake_retransmissions;
      hs_backoff_ = std::min(hs_backoff_ + 1, 6u);
      simulator_.trace_event(trace::EventType::kHandshakeRetransmitted,
                             trace::Endpoint::kClient, static_cast<std::uint64_t>(flow_),
                             /*id=*/0, /*bytes=*/0, hs_backoff_);
      send_handshake(true, HandshakeStep::kClientHello, server_flight_received_mask_);
      client_hs_timer_.set_in(client_handshake_rto() * (1u << hs_backoff_));
    }
    return;
  }
  ++handshake_stats_.handshake_retransmissions;
  hs_backoff_ = std::min(hs_backoff_ + 1, 6u);
  simulator_.trace_event(trace::EventType::kHandshakeRetransmitted, trace::Endpoint::kClient,
                         static_cast<std::uint64_t>(flow_), /*id=*/0, /*bytes=*/0,
                         hs_backoff_);
  if (client_hs_ == ClientHsState::kSynSent) {
    send_handshake(true, HandshakeStep::kSyn);
    client_hs_timer_.set_in(kInitialHandshakeTimeout * (1u << hs_backoff_));
  } else if (client_hs_ == ClientHsState::kHelloSent) {
    // Keep the pieces of the server flight that already arrived and tell the
    // server which ones, so the retry only carries what is missing.
    send_handshake(true, HandshakeStep::kClientHello, server_flight_received_mask_);
    client_hs_timer_.set_in(client_handshake_rto() * (1u << hs_backoff_));
  }
}

void TcpConnection::client_handshake_packet(const TcpSegment& segment) {
  switch (segment.handshake) {
    case HandshakeStep::kSynAck:
      if (client_hs_ == ClientHsState::kSynSent) {
        // Clamped to one tick so a zero-delay profile still yields a valid
        // (strictly positive) seed sample for the RTT estimator.
        client_hs_rtt_ = std::max(simulator_.now() - syn_sent_at_, SimDuration{1});
        client_hs_ = ClientHsState::kHelloSent;
        send_handshake(true, HandshakeStep::kClientHello);
        client_hs_timer_.set_in(client_handshake_rto());
      }
      break;
    case HandshakeStep::kServerFlight: {
      if (client_hs_ != ClientHsState::kHelloSent) break;
      server_flight_received_mask_ |= static_cast<std::uint8_t>(1u << segment.flight_index);
      const auto all = static_cast<std::uint8_t>((1u << segment.flight_size) - 1);
      if (server_flight_received_mask_ == all) complete_client_handshake();
      break;
    }
    default:
      break;
  }
}

void TcpConnection::complete_client_handshake() {
  client_hs_ = ClientHsState::kDone;
  client_established_ = true;
  client_hs_timer_.cancel();
  // One-round-trip handshakes sample the RTT from CH -> server flight.
  if (client_hs_rtt_ == SimDuration::zero() && config_.handshake_rtts == 1) {
    client_hs_rtt_ = std::max(simulator_.now() - syn_sent_at_, SimDuration{1});
  }
  // The peer's initial advertised window: what the server's request-side
  // receiver can take.
  client_sender_.on_established(server_receiver_.rwnd_limit(), client_hs_rtt_);
  simulator_.trace_event(
      trace::EventType::kHandshakeCompleted, trace::Endpoint::kClient,
      static_cast<std::uint64_t>(flow_), config_.handshake_rtts, /*bytes=*/0,
      static_cast<std::uint64_t>((simulator_.now() - syn_sent_at_).count()));
  if (callbacks_.on_established) callbacks_.on_established();
}

void TcpConnection::server_handshake_packet(const TcpSegment& segment) {
  switch (segment.handshake) {
    case HandshakeStep::kSyn:
      // Fresh or duplicate SYN: (re)send SYN/ACK.
      syn_ack_sent_at_ = simulator_.now();
      send_handshake(false, HandshakeStep::kSynAck);
      break;
    case HandshakeStep::kClientHello: {
      const bool first = !server_established_;
      if (first) {
        server_established_ = true;
        const SimDuration rtt = simulator_.now() - syn_ack_sent_at_;
        server_sender_.on_established(client_receiver_.rwnd_limit(),
                                       syn_ack_sent_at_ > SimTime{0} ? rtt : SimDuration{0});
      }
      // Always answer (duplicate CH means part of the flight was lost); the
      // CH's mask trims the resend to the missing pieces.
      send_handshake(false, HandshakeStep::kServerFlight, segment.flight_have_mask);
      break;
    }
    default:
      break;
  }
}

void TcpConnection::client_on_packet(const net::Packet& packet) {
  client_heard_from_server_ = true;
  const auto& segment = static_cast<const TcpSegment&>(*packet.payload);
  if (segment.handshake != HandshakeStep::kNone) {
    client_handshake_packet(segment);
    return;
  }
  if (segment.has_ack) client_sender_.on_ack_received(segment);
  if (segment.has_data) client_receiver_.on_data(segment.seq, segment.payload_bytes);
}

void TcpConnection::server_on_packet(const net::Packet& packet) {
  const auto& segment = static_cast<const TcpSegment&>(*packet.payload);
  if (segment.handshake != HandshakeStep::kNone) {
    server_handshake_packet(segment);
    return;
  }
  if (!server_established_) {
    // 0-RTT early data arriving before (or instead of) a crypto flight.
    server_established_ = true;
    server_sender_.on_established(client_receiver_.rwnd_limit(), SimDuration::zero());
  }
  if (segment.has_ack) server_sender_.on_ack_received(segment);
  if (segment.has_data) server_receiver_.on_data(segment.seq, segment.payload_bytes);
}

void TcpConnection::client_emit(TcpSegment segment) {
  client_receiver_.fill_ack(segment);
  net::Packet packet;
  packet.flow = flow_;
  packet.dest_server = server_;
  packet.wire_bytes =
      segment.has_data ? segment.payload_bytes + kTcpHeaderBytes : kBareAckBytes;
  if (!segment.has_data) {
    ++handshake_stats_.acks_sent;
    simulator_.trace_event(trace::EventType::kAckSent, trace::Endpoint::kClient,
                           static_cast<std::uint64_t>(flow_), segment.cumulative_ack,
                           kBareAckBytes);
  }
  packet.payload = simulator_.arena().create<TcpSegment>(segment);
  network_.client_send(std::move(packet));
}

void TcpConnection::server_emit(TcpSegment segment) {
  server_receiver_.fill_ack(segment);
  net::Packet packet;
  packet.flow = flow_;
  packet.dest_server = server_;
  packet.wire_bytes =
      segment.has_data ? segment.payload_bytes + kTcpHeaderBytes : kBareAckBytes;
  if (!segment.has_data) {
    ++handshake_stats_.acks_sent;
    simulator_.trace_event(trace::EventType::kAckSent, trace::Endpoint::kServer,
                           static_cast<std::uint64_t>(flow_), segment.cumulative_ack,
                           kBareAckBytes);
  }
  packet.payload = simulator_.arena().create<TcpSegment>(segment);
  network_.server_send(std::move(packet));
}

net::TransportStats TcpConnection::stats() const {
  net::TransportStats total = handshake_stats_;
  total += client_sender_.stats();
  total += server_sender_.stats();
  return total;
}

}  // namespace qperc::tcp
