// One direction of a TCP connection: the sending half.
//
// Implements a SACK-based Linux-2019-style sender: RACK time-based loss
// detection, tail-loss probes, RFC 6298 RTO with exponential backoff,
// pluggable congestion control (Cubic / BBRv1), optional fq-style pacing,
// and optional slow-start-after-idle — every knob Table 1 varies.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "cc/bandwidth_sampler.hpp"
#include "cc/congestion_controller.hpp"
#include "cc/pacer.hpp"
#include "cc/rtt_estimator.hpp"
#include "net/transport_stats.hpp"
#include "sim/simulator.hpp"
#include "tcp/config.hpp"
#include "tcp/segment.hpp"
#include "util/arena.hpp"

namespace qperc::tcp {

class TcpSender {
 public:
  /// `send_segment` hands a fully built data segment (without ACK fields —
  /// the connection piggybacks those) to the wire. SmallFunction, not
  /// std::function: the capture is a connection pointer, and the segment-emit
  /// path runs hundreds of times per trial.
  using SendFn = SmallFunction<void(TcpSegment)>;

  TcpSender(sim::Simulator& simulator, const TcpConfig& config,
            std::uint64_t send_buffer_bytes, SendFn send_segment);
  ~TcpSender() = default;
  TcpSender(const TcpSender&) = delete;
  TcpSender& operator=(const TcpSender&) = delete;

  /// Activates the sender once the handshake completes. `initial_peer_rwnd`
  /// is the window advertised by the peer; `handshake_rtt` primes the
  /// RTT estimator.
  void on_established(std::uint64_t initial_peer_rwnd, SimDuration handshake_rtt);

  /// Appends application bytes to the stream. Returns the bytes accepted
  /// (bounded by the send buffer); the rest must wait for on_writable.
  std::uint64_t write(std::uint64_t bytes);
  [[nodiscard]] std::uint64_t writable_bytes() const;
  void set_on_writable(SmallFunction<void()> cb) { on_writable_ = std::move(cb); }

  /// Processes the acknowledgment fields of an incoming segment.
  void on_ack_received(const TcpSegment& segment);

  [[nodiscard]] const net::TransportStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const cc::RttEstimator& rtt() const noexcept { return rtt_; }
  [[nodiscard]] const cc::CongestionController& controller() const { return *cc_; }
  [[nodiscard]] std::uint64_t bytes_in_flight() const noexcept { return outstanding_bytes_; }
  [[nodiscard]] std::uint64_t bytes_unacked() const noexcept {
    return next_seq_ - highest_cum_ack_;
  }
  /// True when everything written has been cumulatively acknowledged.
  [[nodiscard]] bool all_acked() const noexcept {
    return highest_cum_ack_ == app_bytes_total_;
  }

  /// Identifies this sender in trace events (set by the owning connection).
  void set_trace_context(std::uint64_t flow, trace::Endpoint endpoint) noexcept {
    trace_flow_ = flow;
    trace_endpoint_ = endpoint;
  }

 private:
  struct SegmentRecord {
    std::uint64_t start = 0;
    std::uint64_t end = 0;
    std::uint32_t transmissions = 0;
    SimTime last_sent{0};
    std::uint64_t packet_id = 0;  // latest transmission, for rate sampling
    bool sacked = false;
    bool lost = false;         // detected lost, awaiting retransmission
    bool lost_by_rto = false;  // `lost` came from an RTO, not RACK/SACK
    bool outstanding = false;  // counted in the pipe
    bool delivered_counted = false;
  };

  void maybe_send();
  void transmit(SegmentRecord& record, bool is_retransmission);
  /// Finds the next segment to (re)transmit; nullptr when nothing is eligible.
  SegmentRecord* next_lost_segment();
  void mark_delivered(SegmentRecord& record, SimTime now, std::uint64_t& newly_delivered,
                      SimDuration& rtt_sample, SimTime& newest_delivered_sent_time,
                      std::uint64_t& newest_delivered_packet_id);
  void detect_losses(SimTime newest_delivered_sent_time);
  /// Reverts an RTO's loss markings and window collapse after the ACK stream
  /// proved the timeout spurious (original transmissions kept arriving).
  void undo_spurious_rto();
  void enter_recovery_if_needed();
  void rearm_retransmission_timer();
  void on_retransmission_timer();
  void restart_from_idle_if_needed();

  sim::Simulator& simulator_;
  TcpConfig config_;
  SendFn send_segment_;
  SmallFunction<void()> on_writable_;

  std::uint64_t trace_flow_ = 0;
  trace::Endpoint trace_endpoint_ = trace::Endpoint::kNone;

  std::unique_ptr<cc::CongestionController> cc_;
  /// Cached cc_->uses_delivery_rate(): selects the sampler ack entry point
  /// without a virtual call per acked segment.
  bool cc_wants_rate_ = false;
  cc::Pacer pacer_;
  cc::RttEstimator rtt_;
  cc::BandwidthSampler sampler_;
  net::TransportStats stats_;

  bool established_ = false;
  std::uint64_t app_bytes_total_ = 0;  // bytes the app has written
  std::uint64_t send_buffer_bytes_ = 0;  // set by the constructor
  std::uint64_t next_seq_ = 0;         // next new byte to packetize
  std::uint64_t highest_cum_ack_ = 0;  // snd_una
  std::uint64_t peer_rwnd_ = 0;
  std::uint64_t outstanding_bytes_ = 0;  // the SACK "pipe"
  /// Keyed by start seq. Nodes come from the trial arena: insert/erase churn
  /// during recovery never touches the heap (ordering and iteration are those
  /// of a plain std::map, so results are unchanged).
  std::map<std::uint64_t, SegmentRecord, std::less<std::uint64_t>,
           ArenaAllocator<std::pair<const std::uint64_t, SegmentRecord>>>
      segments_;

  std::uint64_t next_packet_id_ = 1;
  SimTime last_send_time_{0};
  SimTime rack_newest_sent_time_{0};

  // Recovery episode tracking (one cwnd reduction per round trip of loss).
  std::uint64_t recovery_point_ = 0;
  // Round-trip accounting for the congestion controller.
  std::uint64_t round_end_seq_ = 0;

  // Retransmission timer: either a tail-loss probe or a full RTO.
  sim::Timer retx_timer_;
  bool timer_is_tlp_ = false;
  std::uint32_t rto_backoff_ = 0;
  bool tlp_fired_this_episode_ = false;

  /// Bytes declared lost since the congestion controller last consumed an
  /// AckSample (feeds BBR's long-term bandwidth estimator).
  std::uint64_t bytes_lost_since_ack_ = 0;
  /// Set by mark_delivered when an ACK covers the original transmission of a
  /// segment an RTO declared lost; consumed once per ACK.
  bool spurious_rto_detected_ = false;

  sim::Timer send_timer_;  // pacing release
};

}  // namespace qperc::tcp
