#include "tcp/sender.hpp"

#include <algorithm>

#include "net/packet.hpp"
#include "util/check.hpp"

namespace qperc::tcp {
namespace {

constexpr SimDuration kMinTlpTimeout = milliseconds(10);

}  // namespace

TcpSender::TcpSender(sim::Simulator& simulator, const TcpConfig& config,
                     std::uint64_t send_buffer_bytes, SendFn send_segment)
    : simulator_(simulator),
      config_(config),
      send_segment_(std::move(send_segment)),
      cc_(cc::make_congestion_controller(config.congestion_control,
                                         config.initial_window_segments, config.mss,
                                         config.bbr_lt_bw)),
      pacer_(cc::PacerConfig{.enabled = config.pacing,
                             .initial_quantum_segments = 10,
                             .refill_quantum_segments = 2,
                             .segment_bytes = static_cast<std::uint32_t>(config.mss)}),
      sampler_(simulator.arena()),
      send_buffer_bytes_(send_buffer_bytes),
      segments_(ArenaAllocator<std::pair<const std::uint64_t, SegmentRecord>>(
          simulator.arena())),
      retx_timer_(simulator, [this] { on_retransmission_timer(); }),
      send_timer_(simulator, [this] { maybe_send(); }) {
  cc_wants_rate_ = cc_->uses_delivery_rate();
}

void TcpSender::on_established(std::uint64_t initial_peer_rwnd, SimDuration handshake_rtt) {
  QPERC_DCHECK(!established_) << "TCP sender established twice";
  established_ = true;
  peer_rwnd_ = initial_peer_rwnd;
  if (handshake_rtt > SimDuration::zero()) rtt_.on_rtt_sample(handshake_rtt);
  pacer_.set_rate(simulator_.now(), cc_->pacing_rate(rtt_.smoothed_rtt()));
  last_send_time_ = simulator_.now();
  maybe_send();
}

std::uint64_t TcpSender::write(std::uint64_t bytes) {
  const std::uint64_t accepted = std::min(bytes, writable_bytes());
  if (accepted == 0) return 0;
  restart_from_idle_if_needed();
  app_bytes_total_ += accepted;
  maybe_send();
  return accepted;
}

std::uint64_t TcpSender::writable_bytes() const {
  const std::uint64_t buffered = app_bytes_total_ - highest_cum_ack_;
  return buffered >= send_buffer_bytes_ ? 0 : send_buffer_bytes_ - buffered;
}

void TcpSender::restart_from_idle_if_needed() {
  if (!established_ || outstanding_bytes_ != 0 || next_seq_ != app_bytes_total_) return;
  const SimDuration idle = simulator_.now() - last_send_time_;
  if (idle < rtt_.rto()) return;
  if (config_.slow_start_after_idle) cc_->on_restart_after_idle();
  pacer_.on_restart_from_idle(simulator_.now());
}

TcpSender::SegmentRecord* TcpSender::next_lost_segment() {
  for (auto& [start, record] : segments_) {
    if (record.lost && !record.sacked) return &record;
  }
  return nullptr;
}

void TcpSender::maybe_send() {
  if (!established_) return;
  QPERC_DCHECK_LE(highest_cum_ack_, next_seq_) << "SND.UNA ran past SND.NXT";
  QPERC_DCHECK_LE(next_seq_, app_bytes_total_);
  while (true) {
    const std::uint64_t cwnd = cc_->congestion_window();
    QPERC_DCHECK_GE(cwnd, config_.mss) << "congestion window collapsed below 1 MSS";
    if (outstanding_bytes_ >= cwnd) return;  // window full; ACK clock will resume

    SegmentRecord* candidate = next_lost_segment();
    bool is_retransmission = candidate != nullptr;
    if (candidate == nullptr) {
      if (next_seq_ >= app_bytes_total_) {
        // Nothing more to send although the window has room: app-limited.
        sampler_.on_app_limited();
        return;
      }
      // Respect the peer's advertised receive window for new data.
      const std::uint64_t in_window = next_seq_ - highest_cum_ack_;
      if (in_window >= peer_rwnd_) return;  // zero-window; opened by later ACKs
      const std::uint64_t len =
          std::min({config_.mss, app_bytes_total_ - next_seq_, peer_rwnd_ - in_window});
      auto [it, inserted] =
          segments_.try_emplace(next_seq_, SegmentRecord{.start = next_seq_,
                                                         .end = next_seq_ + len});
      candidate = &it->second;
      next_seq_ += len;
    }

    const auto wire_bytes =
        static_cast<std::uint32_t>(candidate->end - candidate->start) + kTcpHeaderBytes;
    const SimTime release = pacer_.next_send_time(simulator_.now(), wire_bytes);
    if (release > simulator_.now()) {
      // Undo speculative packetization of new data so a later call re-derives it.
      if (!is_retransmission) {
        next_seq_ = candidate->start;
        segments_.erase(candidate->start);
      }
      send_timer_.set_at(release);
      return;
    }
    transmit(*candidate, is_retransmission);
  }
}

void TcpSender::transmit(SegmentRecord& record, bool is_retransmission) {
  const SimTime now = simulator_.now();
  QPERC_DCHECK_LT(record.start, record.end) << "empty TCP segment packetized";
  QPERC_DCHECK_GE(now, last_send_time_) << "send timestamps must be monotone";
  const auto len = record.end - record.start;

  record.transmissions += 1;
  record.last_sent = now;
  record.packet_id = next_packet_id_++;
  record.lost = false;
  record.lost_by_rto = false;
  if (!record.outstanding) {
    record.outstanding = true;
    outstanding_bytes_ += len;
  }

  sampler_.on_packet_sent(record.packet_id, len, now, outstanding_bytes_ - len);
  cc_->on_packet_sent(now, outstanding_bytes_ - len, len);
  const std::uint32_t wire = static_cast<std::uint32_t>(len) + kTcpHeaderBytes;
  pacer_.on_packet_sent(now, wire);
  last_send_time_ = now;

  ++stats_.data_packets_sent;
  stats_.bytes_sent += len;
  if (is_retransmission) ++stats_.retransmissions;
  if (simulator_.trace() != nullptr) {
    simulator_.trace_event(is_retransmission ? trace::EventType::kPacketRetransmitted
                                             : trace::EventType::kPacketSent,
                           trace_endpoint_, trace_flow_, record.start, len,
                           record.transmissions);
  }

  TcpSegment segment;
  segment.has_data = true;
  segment.seq = record.start;
  segment.payload_bytes = static_cast<std::uint32_t>(len);
  send_segment_(std::move(segment));

  rearm_retransmission_timer();
}

void TcpSender::mark_delivered(SegmentRecord& record, SimTime now,
                               std::uint64_t& newly_delivered, SimDuration& rtt_sample,
                               SimTime& newest_delivered_sent_time,
                               std::uint64_t& newest_delivered_packet_id) {
  if (record.delivered_counted) return;
  record.delivered_counted = true;
  const auto len = record.end - record.start;
  if (record.lost && simulator_.trace() != nullptr) {
    // Declared lost but the original transmission was delivered after all.
    simulator_.trace_event(trace::EventType::kSpuriousLoss, trace_endpoint_, trace_flow_,
                           record.start, len, record.lost_by_rto ? 1 : 0);
  }
  if (record.lost && record.lost_by_rto && record.transmissions == 1) {
    // The ACK acknowledges the *original* transmission of a segment the RTO
    // declared lost: the timeout was spurious (F-RTO/RFC 3522 detection).
    spurious_rto_detected_ = true;
  }
  newly_delivered += len;
  stats_.bytes_delivered += len;
  if (record.outstanding) {
    record.outstanding = false;
    QPERC_DCHECK_GE(outstanding_bytes_, len);
    outstanding_bytes_ -= len;
  }
  if (record.transmissions == 1 && now >= record.last_sent) {
    // Karn's rule: only never-retransmitted segments produce RTT samples.
    // Clamp to one tick: a zero-delay profile can deliver and acknowledge in
    // the same instant, and RttEstimator requires strictly positive samples.
    rtt_sample = std::max({rtt_sample, now - record.last_sent, SimDuration{1}});
  }
  if (record.last_sent > newest_delivered_sent_time) {
    newest_delivered_sent_time = record.last_sent;
    newest_delivered_packet_id = record.packet_id;
  }
}

void TcpSender::on_ack_received(const TcpSegment& segment) {
  if (!segment.has_ack || !established_) return;
  // Always-on: an ACK for bytes that were never sent means sequence-space
  // corruption somewhere in the stack; every byte count downstream of here
  // would be garbage.
  QPERC_CHECK_LE(segment.cumulative_ack, next_seq_)
      << "peer acknowledged bytes beyond SND.NXT";
  const SimTime now = simulator_.now();
  // Window update rule (RFC 9293 §3.10.7.4 flavour): only segments at or
  // beyond the current cumulative ACK may change the send window. Under
  // reordering, a stale ACK arriving late would otherwise shrink peer_rwnd_
  // below what the receiver has since advertised and stall the sender — with
  // no zero-window probe to recover, a permanent deadlock.
  if (segment.cumulative_ack >= highest_cum_ack_) {
    peer_rwnd_ = segment.receive_window_bytes;
  }

  std::uint64_t newly_delivered = 0;
  SimDuration rtt_sample{0};
  SimTime newest_sent_time{0};
  std::uint64_t newest_packet_id = 0;

  // Rate samples: keep the fastest sample in this ACK (BBR's max filter
  // consumes it; taking the max here loses nothing).
  cc::RateSample best_rate_sample{};
  bool have_rate_sample = false;
  const auto consider_rate_sample = [&](std::uint64_t packet_id) {
    if (!cc_wants_rate_) {
      // Loss-based controller: same bookkeeping and same have_rate gate,
      // minus the rate arithmetic nobody reads.
      have_rate_sample |= sampler_.on_packet_acked_no_sample(packet_id, now);
    } else if (const auto sample = sampler_.on_packet_acked(packet_id, now)) {
      if (!have_rate_sample ||
          sample->delivery_rate > best_rate_sample.delivery_rate) {
        best_rate_sample = *sample;
      }
      have_rate_sample = true;
    }
  };

  // Cumulative acknowledgment.
  const bool cum_advanced = segment.cumulative_ack > highest_cum_ack_;
  if (cum_advanced) {
    auto it = segments_.begin();
    while (it != segments_.end() && it->second.end <= segment.cumulative_ack) {
      mark_delivered(it->second, now, newly_delivered, rtt_sample, newest_sent_time,
                     newest_packet_id);
      consider_rate_sample(it->second.packet_id);
      it = segments_.erase(it);
    }
    highest_cum_ack_ = segment.cumulative_ack;
  }

  // Selective acknowledgments.
  for (const auto& block : segment.sacks()) {
    QPERC_DCHECK_LT(block.start, block.end) << "empty SACK block";
    QPERC_DCHECK_LE(block.end, next_seq_) << "SACK block beyond SND.NXT";
    for (auto it = segments_.lower_bound(block.start);
         it != segments_.end() && it->second.end <= block.end; ++it) {
      SegmentRecord& record = it->second;
      if (record.sacked) continue;
      record.sacked = true;
      mark_delivered(record, now, newly_delivered, rtt_sample, newest_sent_time,
                     newest_packet_id);
      consider_rate_sample(record.packet_id);
    }
  }

  if (rtt_sample > SimDuration::zero()) rtt_.on_rtt_sample(rtt_sample);
  if (newest_sent_time > rack_newest_sent_time_) rack_newest_sent_time_ = newest_sent_time;

  if (spurious_rto_detected_) {
    spurious_rto_detected_ = false;
    undo_spurious_rto();
  }

  detect_losses(rack_newest_sent_time_);
  QPERC_DCHECK_LE(outstanding_bytes_, next_seq_ - highest_cum_ack_)
      << "pipe exceeds un-acknowledged sequence range";

  // Congestion-controller update.
  bool round_ended = false;
  if (highest_cum_ack_ >= round_end_seq_) {
    round_ended = true;
    round_end_seq_ = next_seq_;
  }
  cc::AckSample ack_sample;
  ack_sample.bytes_acked = newly_delivered;
  ack_sample.bytes_lost = bytes_lost_since_ack_;
  ack_sample.rtt = rtt_sample;
  ack_sample.smoothed_rtt = rtt_.smoothed_rtt();
  if (have_rate_sample) {
    ack_sample.delivery_rate = best_rate_sample.delivery_rate;
    ack_sample.is_app_limited = best_rate_sample.is_app_limited;
  }
  ack_sample.bytes_in_flight = outstanding_bytes_;
  ack_sample.round_trip_ended = round_ended;
  if (newly_delivered > 0) {
    cc_->on_ack(now, ack_sample);
    bytes_lost_since_ack_ = 0;  // consumed; keep accumulating otherwise
    rto_backoff_ = 0;
    tlp_fired_this_episode_ = false;
  }
  pacer_.set_rate(simulator_.now(), cc_->pacing_rate(rtt_.smoothed_rtt()));

  if (simulator_.trace() != nullptr) {
    simulator_.trace_event(
        trace::EventType::kMetricsUpdated, trace_endpoint_, trace_flow_,
        static_cast<std::uint64_t>(rtt_.smoothed_rtt().count()), outstanding_bytes_,
        cc_->congestion_window());
  }

  rearm_retransmission_timer();

  if (cum_advanced && on_writable_ && writable_bytes() > 0) on_writable_();
  maybe_send();
}

void TcpSender::undo_spurious_rto() {
  // The RTO that marked everything lost was bogus: original-transmission ACKs
  // are still arriving. Un-mark the not-yet-retransmitted segments so the
  // sender keeps waiting for their original ACKs instead of blasting a
  // go-back-N retransmission storm into an already-slow link, and undo the
  // window collapse (the path did not actually lose anything).
  for (auto& [start, record] : segments_) {
    if (!record.lost || !record.lost_by_rto || record.sacked) continue;
    record.lost = false;
    record.lost_by_rto = false;
    if (!record.outstanding) {
      record.outstanding = true;
      outstanding_bytes_ += record.end - record.start;
    }
  }
  rto_backoff_ = 0;
  ++stats_.spurious_timeouts;
  cc_->on_spurious_retransmission_timeout();
  pacer_.set_rate(simulator_.now(), cc_->pacing_rate(rtt_.smoothed_rtt()));
}

void TcpSender::detect_losses(SimTime newest_delivered_sent_time) {
  if (newest_delivered_sent_time == SimTime{0}) return;
  // RACK: a segment sent sufficiently before the newest delivered segment is
  // deemed lost. Reordering window: a quarter of the minimum RTT.
  const SimDuration reorder_window =
      rtt_.has_sample() ? std::max<SimDuration>(rtt_.min_rtt() / 4, milliseconds(1))
                        : SimDuration{milliseconds(5)};
  bool any_lost = false;
  for (auto& [start, record] : segments_) {
    if (record.sacked || record.lost || !record.outstanding) continue;
    if (record.last_sent + reorder_window < newest_delivered_sent_time) {
      record.lost = true;
      record.lost_by_rto = false;
      record.outstanding = false;
      QPERC_DCHECK_GE(outstanding_bytes_, record.end - record.start);
      outstanding_bytes_ -= record.end - record.start;
      sampler_.on_packet_lost(record.packet_id);
      bytes_lost_since_ack_ += record.end - record.start;
      any_lost = true;
      if (simulator_.trace() != nullptr) {
        simulator_.trace_event(trace::EventType::kPacketLost, trace_endpoint_, trace_flow_,
                               record.start, record.end - record.start, /*value=*/0);
      }
    }
  }
  if (any_lost) enter_recovery_if_needed();
}

void TcpSender::enter_recovery_if_needed() {
  if (highest_cum_ack_ < recovery_point_) return;  // already in this episode
  recovery_point_ = next_seq_;
  ++stats_.congestion_events;
  if (simulator_.trace() != nullptr) {
    simulator_.trace_event(trace::EventType::kCongestionEvent, trace_endpoint_, trace_flow_,
                           /*id=*/0, outstanding_bytes_, /*value=*/0);
  }
  cc_->on_congestion_event(simulator_.now(), outstanding_bytes_);
  pacer_.set_rate(simulator_.now(), cc_->pacing_rate(rtt_.smoothed_rtt()));
}

void TcpSender::rearm_retransmission_timer() {
  const bool has_outstanding = outstanding_bytes_ > 0;
  const bool has_lost = next_lost_segment() != nullptr;
  if (!has_outstanding && !has_lost) {
    retx_timer_.cancel();
    return;
  }
  const SimDuration rto = rtt_.rto() * (1u << std::min(rto_backoff_, 6u));
  // Tail-loss probe fires before the full RTO when eligible: something is in
  // flight, we have an RTT estimate, and no probe was spent this episode.
  if (has_outstanding && rtt_.has_sample() && !tlp_fired_this_episode_ &&
      rto_backoff_ == 0) {
    const SimDuration pto = std::max(2 * rtt_.smoothed_rtt(), kMinTlpTimeout);
    if (pto < rto) {
      timer_is_tlp_ = true;
      retx_timer_.set_in(pto);
      return;
    }
  }
  timer_is_tlp_ = false;
  retx_timer_.set_in(rto);
}

void TcpSender::on_retransmission_timer() {
  if (timer_is_tlp_) {
    // Probe with the highest outstanding segment to elicit a SACK.
    tlp_fired_this_episode_ = true;
    ++stats_.tail_probes;
    simulator_.trace_event(trace::EventType::kTlpFired, trace_endpoint_, trace_flow_);
    SegmentRecord* tail = nullptr;
    for (auto& [start, record] : segments_) {
      if (record.outstanding && !record.sacked) tail = &record;
    }
    if (tail != nullptr) {
      transmit(*tail, true);
    } else {
      rearm_retransmission_timer();
    }
    return;
  }

  // Full RTO: collapse the pipe, mark everything unacked as lost.
  ++stats_.timeouts;
  rto_backoff_ = std::min(rto_backoff_ + 1, 10u);
  simulator_.trace_event(trace::EventType::kRtoFired, trace_endpoint_, trace_flow_,
                         /*id=*/0, /*bytes=*/0, rto_backoff_);
  for (auto& [start, record] : segments_) {
    if (record.sacked || record.lost) continue;
    record.lost = true;
    record.lost_by_rto = true;
    if (record.outstanding) {
      record.outstanding = false;
      QPERC_DCHECK_GE(outstanding_bytes_, record.end - record.start);
      outstanding_bytes_ -= record.end - record.start;
    }
    sampler_.on_packet_lost(record.packet_id);
    bytes_lost_since_ack_ += record.end - record.start;
    if (simulator_.trace() != nullptr) {
      simulator_.trace_event(trace::EventType::kPacketLost, trace_endpoint_, trace_flow_,
                             record.start, record.end - record.start, /*value=*/1);
    }
  }
  recovery_point_ = next_seq_;
  cc_->on_retransmission_timeout();
  pacer_.set_rate(simulator_.now(), cc_->pacing_rate(rtt_.smoothed_rtt()));
  maybe_send();
  rearm_retransmission_timer();
}

}  // namespace qperc::tcp
