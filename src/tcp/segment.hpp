// On-the-wire TCP segment representation for the emulated network.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>

#include "net/packet.hpp"

namespace qperc::tcp {

/// A SACK block: [start, end) in byte-sequence space.
struct SackBlock {
  std::uint64_t start = 0;
  std::uint64_t end = 0;
};

/// Handshake phases. The handshake is modeled with explicit packets so that
/// SYN/hello loss on the in-flight networks delays connections realistically.
enum class HandshakeStep : std::uint8_t {
  kNone = 0,
  kSyn,            // client -> server
  kSynAck,         // server -> client
  kClientHello,    // client -> server (TLS CH, carries TCP ACK)
  kServerFlight,   // server -> client (SH + certificate + Finished)
};

/// TCP/TLS header overhead added to every data-bearing packet (IPv4 20 +
/// TCP 20 + options/timestamps 12 + TLS record framing amortized).
inline constexpr std::uint32_t kTcpHeaderBytes = 56;
inline constexpr std::uint32_t kBareAckBytes = 68;  // header + SACK options

/// Receivers advertise at most 3 SACK blocks per ACK (the classic TCP option
/// space limit when timestamps are in use) — the contrast to QUIC's large
/// ACK ranges that §4.3 calls out.
inline constexpr std::size_t kMaxSackBlocks = 3;

struct TcpSegment final : net::Payload {
  HandshakeStep handshake = HandshakeStep::kNone;
  /// Index of this packet within a multi-packet handshake flight.
  std::uint8_t flight_index = 0;
  std::uint8_t flight_size = 1;
  /// In a retried ClientHello: bitmask of server-flight pieces the client
  /// already holds, so the server retransmits only the missing ones (the
  /// moral equivalent of TCP retransmitting just the lost crypto segment).
  /// Without it a policer whose bucket is smaller than the full flight
  /// livelocks the handshake: the head packets always consume the tokens
  /// the tail needs.
  std::uint8_t flight_have_mask = 0;

  // Data part.
  bool has_data = false;
  std::uint64_t seq = 0;
  std::uint32_t payload_bytes = 0;

  // Acknowledgment part (piggybacked on every segment once established).
  // SACK blocks are stored inline (the option-space cap makes them tiny),
  // which keeps the segment trivially destructible so it can live in the
  // trial arena.
  bool has_ack = false;
  std::uint8_t sack_count = 0;
  std::uint64_t cumulative_ack = 0;
  SackBlock sack_blocks[kMaxSackBlocks];
  std::uint64_t receive_window_bytes = 0;

  [[nodiscard]] std::span<const SackBlock> sacks() const noexcept {
    return {sack_blocks, sack_count};
  }
};
static_assert(std::is_trivially_destructible_v<TcpSegment>,
              "TcpSegment lives in the trial arena");

}  // namespace qperc::tcp
