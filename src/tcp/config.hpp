// TCP stack parameterization (the rows of Table 1 that run over TCP).
#pragma once

#include <cstdint>

#include "cc/factory.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace qperc::tcp {

struct TcpConfig {
  /// IW10 for stock Linux, IW32 for the paper's TCP+ variants.
  std::uint32_t initial_window_segments = 10;
  cc::CcKind congestion_control = cc::CcKind::kCubic;
  /// BBRv1 long-term (policer) bandwidth estimation; ignored by other
  /// controllers. Off reproduces pre-lt_bw "stock" BBR on policed links.
  bool bbr_lt_bw = true;
  /// sch_fq-style pacing; off for stock Linux TCP.
  bool pacing = false;
  /// "Enlarge the send and receive buffers according to the BDP" (§3). When
  /// false the receive window starts small and autotunes like Linux DRS.
  bool tuned_buffers = false;
  /// net.ipv4.tcp_slow_start_after_idle; TCP+ disables it.
  bool slow_start_after_idle = true;
  std::uint64_t mss = 1460;

  /// TLS 1.3 over TCP: one round trip for TCP, one for TLS, so the request
  /// leaves after 2 RTTs. Kept configurable for the 0-RTT/TFO ablation.
  std::uint32_t handshake_rtts = 2;

  /// Receive-window ceiling for the autotuned (stock) case.
  std::uint64_t autotune_max_rwnd_bytes = 3 * 1024 * 1024;
  std::uint64_t autotune_initial_rwnd_bytes = 64 * 1024;
};

/// Derived per-network sizing: the "tuned buffers" row of Table 1.
[[nodiscard]] inline std::uint64_t tuned_rwnd_bytes(std::uint64_t bdp_bytes) {
  // Twice the BDP so the window never limits full utilization even with the
  // bottleneck queue full.
  return std::max<std::uint64_t>(2 * bdp_bytes, 128 * 1024);
}

}  // namespace qperc::tcp
