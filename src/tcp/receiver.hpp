// One direction of a TCP connection: the receiving half.
//
// Reassembles the byte stream, generates delayed/immediate ACKs with at most
// three SACK blocks (the TCP option-space limit that §4.3 contrasts with
// QUIC's large ACK ranges), and models the receive window: fixed 2xBDP when
// "tuned buffers" are on, Linux-DRS-style autotuning from 64 KiB otherwise.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "sim/simulator.hpp"
#include "tcp/config.hpp"
#include "tcp/segment.hpp"
#include "util/arena.hpp"

namespace qperc::tcp {

class TcpReceiver {
 public:
  /// `send_ack_now` asks the connection to emit a bare ACK carrying
  /// current_ack(); `on_delivered(total)` reports in-order delivery progress
  /// to the application (HTTP layer).
  TcpReceiver(sim::Simulator& simulator, const TcpConfig& config,
              std::uint64_t rwnd_limit_bytes, SmallFunction<void()> send_ack_now,
              SmallFunction<void(std::uint64_t)> on_delivered);

  TcpReceiver(const TcpReceiver&) = delete;
  TcpReceiver& operator=(const TcpReceiver&) = delete;

  void on_data(std::uint64_t seq, std::uint32_t payload_bytes);

  /// Snapshot of the acknowledgment fields for piggybacking on any outgoing
  /// segment (also marks pending delayed ACKs as satisfied).
  void fill_ack(TcpSegment& segment);

  [[nodiscard]] std::uint64_t delivered_bytes() const noexcept { return rcv_nxt_; }
  [[nodiscard]] std::uint64_t advertised_window() const;
  [[nodiscard]] std::uint64_t rwnd_limit() const noexcept { return rwnd_limit_; }

  /// Identifies this receiver in trace events (set by the owning connection).
  void set_trace_context(std::uint64_t flow, trace::Endpoint endpoint) noexcept {
    trace_flow_ = flow;
    trace_endpoint_ = endpoint;
  }

 private:
  void schedule_ack(bool immediate);
  void autotune(std::uint64_t newly_delivered);

  sim::Simulator& simulator_;
  TcpConfig config_;
  SmallFunction<void()> send_ack_now_;
  SmallFunction<void(std::uint64_t)> on_delivered_;

  std::uint64_t trace_flow_ = 0;
  trace::Endpoint trace_endpoint_ = trace::Endpoint::kNone;

  std::uint64_t rcv_nxt_ = 0;
  /// Out-of-order ranges [start, end), non-overlapping, above rcv_nxt_.
  /// Arena-backed nodes: reassembly churn under loss stays heap-free.
  std::map<std::uint64_t, std::uint64_t, std::less<std::uint64_t>,
           ArenaAllocator<std::pair<const std::uint64_t, std::uint64_t>>>
      ooo_ranges_;
  /// Range starts ordered by update recency (most recent first) for RFC 2018
  /// SACK block selection.
  std::vector<std::uint64_t, ArenaAllocator<std::uint64_t>> recency_;

  std::uint64_t rwnd_limit_ = 0;   // set by the constructor
  bool autotuning_ = false;        // set by the constructor
  std::uint64_t autotune_delivered_marker_ = 0;

  std::uint32_t full_packets_since_ack_ = 0;
  sim::Timer delayed_ack_timer_;
};

}  // namespace qperc::tcp
