// A full TCP+TLS connection through the emulated network.
//
// One object simulates both endpoints (client and origin server); every
// packet between them still traverses the emulated bottleneck links, so
// handshakes, ACKs, and retransmissions all experience loss and queueing.
//
// Handshake model (fresh connection, no TFO / no TLS early-data, §3):
//   SYN -> SYN/ACK -> ClientHello -> ServerHello+Cert+Finished
// after which the client may transmit (Finished piggybacks the first write):
// two round trips before the request leaves, versus gQUIC's one.
#pragma once

#include <cstdint>

#include "net/emulated_network.hpp"
#include "net/transport_stats.hpp"
#include "sim/simulator.hpp"
#include "tcp/config.hpp"
#include "tcp/receiver.hpp"
#include "tcp/segment.hpp"
#include "tcp/sender.hpp"

namespace qperc::tcp {

class TcpConnection {
 public:
  struct Callbacks {
    /// Client-side handshake completion: the request may now flow.
    SmallFunction<void()> on_established;
    /// Server side: total in-order client->server bytes delivered so far.
    SmallFunction<void(std::uint64_t)> on_request_bytes;
    /// Client side: total in-order server->client bytes delivered so far.
    SmallFunction<void(std::uint64_t)> on_response_bytes;
  };

  TcpConnection(sim::Simulator& simulator, net::EmulatedNetwork& network,
                net::ServerId server, const TcpConfig& config, Callbacks callbacks);
  ~TcpConnection();
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Starts the handshake (sends the SYN).
  void connect();

  [[nodiscard]] bool established() const noexcept { return client_established_; }

  /// Client -> server stream (requests). Bytes may be written before the
  /// handshake completes; they are buffered and flushed on establishment.
  std::uint64_t client_write(std::uint64_t bytes) { return client_sender_.write(bytes); }
  [[nodiscard]] std::uint64_t client_writable() const {
    return client_sender_.writable_bytes();
  }

  /// Server -> client stream (responses).
  std::uint64_t server_write(std::uint64_t bytes) { return server_sender_.write(bytes); }
  [[nodiscard]] std::uint64_t server_writable() const {
    return server_sender_.writable_bytes();
  }
  void set_server_on_writable(SmallFunction<void()> cb) {
    server_sender_.set_on_writable(std::move(cb));
  }

  [[nodiscard]] const TcpSender& server_sender() const { return server_sender_; }
  [[nodiscard]] const TcpSender& client_sender() const { return client_sender_; }
  /// Combined counters of both directions plus handshake traffic.
  [[nodiscard]] net::TransportStats stats() const;
  [[nodiscard]] net::FlowId flow() const noexcept { return flow_; }

 private:
  enum class ClientHsState { kIdle, kSynSent, kHelloSent, kDone };

  void client_on_packet(const net::Packet& packet);
  void server_on_packet(const net::Packet& packet);
  void client_handshake_packet(const TcpSegment& segment);
  void server_handshake_packet(const TcpSegment& segment);
  void send_handshake(bool from_client, HandshakeStep step, std::uint8_t have_mask = 0);
  [[nodiscard]] SimDuration client_handshake_rto() const;
  void on_client_handshake_timeout();
  void client_emit(TcpSegment segment);
  void server_emit(TcpSegment segment);
  void complete_client_handshake();

  sim::Simulator& simulator_;
  net::EmulatedNetwork& network_;
  net::ServerId server_;
  TcpConfig config_;
  Callbacks callbacks_;
  net::FlowId flow_;

  // Both directions live inline: a connection is one allocation, which is
  // what keeps the per-trial budget in docs/PERFORMANCE.md honest. Their
  // callbacks capture `this` only, so construction order is safe (they are
  // invoked well after the constructor returns).
  TcpSender client_sender_;
  TcpSender server_sender_;
  TcpReceiver client_receiver_;  // receives responses
  TcpReceiver server_receiver_;  // receives requests

  ClientHsState client_hs_ = ClientHsState::kIdle;
  bool client_established_ = false;
  bool server_established_ = false;
  bool client_heard_from_server_ = false;
  SimTime syn_sent_at_{0};
  SimTime syn_ack_sent_at_{0};
  SimDuration client_hs_rtt_{0};
  std::uint8_t server_flight_received_mask_ = 0;
  sim::Timer client_hs_timer_;
  std::uint32_t hs_backoff_ = 0;
  net::TransportStats handshake_stats_;
};

}  // namespace qperc::tcp
