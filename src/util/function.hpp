// SmallFunction: the one callable vocabulary of the simulation layer.
//
// A move-only type-erased callable with inline small-buffer storage and a
// heap fallback. Simulator callbacks, link delivery hooks, and network flow
// handlers all capture a couple of pointers plus at most a Packet descriptor,
// so with the default 48-byte buffer the hot path never touches the heap —
// the property the zero-allocation scheduling core is built on (std::function
// gives no such guarantee and allocates for >2-word captures on libstdc++).
//
// Differences from std::function, on purpose:
//   * move-only: callbacks are scheduled once and consumed once; requiring
//     copyability would forbid move-only captures and buy nothing,
//   * no target()/target_type(): nothing in the simulator inspects callables,
//   * invoking an empty SmallFunction is undefined (checked by assert), not
//     std::bad_function_call — empty callbacks are a programming error here.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace qperc {

inline constexpr std::size_t kSmallFunctionInlineBytes = 48;

template <class Signature, std::size_t InlineBytes = kSmallFunctionInlineBytes>
class SmallFunction;  // primary template left undefined

template <class R, class... Args, std::size_t InlineBytes>
class SmallFunction<R(Args...), InlineBytes> {
 public:
  SmallFunction() noexcept = default;
  SmallFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <class F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, SmallFunction> &&
             std::is_invocable_r_v<R, std::decay_t<F>&, Args...>)
  SmallFunction(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Decayed = std::decay_t<F>;
    if constexpr (fits_inline<Decayed>) {
      ::new (static_cast<void*>(storage_)) Decayed(std::forward<F>(fn));
      ops_ = &kInlineOps<Decayed>;
    } else {
      auto* heap = new Decayed(std::forward<F>(fn));
      std::memcpy(storage_, &heap, sizeof(heap));
      ops_ = &kHeapOps<Decayed>;
    }
  }

  SmallFunction(SmallFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      relocate_from(other);
      other.ops_ = nullptr;
    }
  }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        relocate_from(other);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  SmallFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  R operator()(Args... args) {
    assert(ops_ != nullptr && "invoking an empty SmallFunction");
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void* storage, Args&&... args);
    /// Move-constructs the callable into `to` and destroys the one in `from`.
    /// nullptr means the callable is trivially relocatable: moving is a raw
    /// byte copy and destruction a no-op — the fast path for the pointer-only
    /// captures the scheduler shuffles on every event dispatch.
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  /// Heap fallback requires only that the callable be movable; the inline
  /// path additionally needs a nothrow move so relocation can stay noexcept.
  template <class F>
  static constexpr bool fits_inline = sizeof(F) <= InlineBytes &&
                                      alignof(F) <= alignof(std::max_align_t) &&
                                      std::is_nothrow_move_constructible_v<F>;

  template <class F>
  [[nodiscard]] static F* inline_target(void* storage) noexcept {
    return std::launder(reinterpret_cast<F*>(storage));
  }

  template <class F>
  [[nodiscard]] static F* heap_target(void* storage) noexcept {
    F* target = nullptr;
    std::memcpy(&target, storage, sizeof(target));
    return target;
  }

  template <class F>
  static constexpr bool trivially_relocatable =
      std::is_trivially_copyable_v<F> && std::is_trivially_destructible_v<F>;

  template <class F>
  static constexpr Ops kInlineOps{
      [](void* storage, Args&&... args) -> R {
        return (*inline_target<F>(storage))(std::forward<Args>(args)...);
      },
      trivially_relocatable<F> ? nullptr
                               : +[](void* from, void* to) noexcept {
                                   F* source = inline_target<F>(from);
                                   ::new (to) F(std::move(*source));
                                   source->~F();
                                 },
      trivially_relocatable<F>
          ? nullptr
          : +[](void* storage) noexcept { inline_target<F>(storage)->~F(); },
  };

  template <class F>
  static constexpr Ops kHeapOps{
      [](void* storage, Args&&... args) -> R {
        return (*heap_target<F>(storage))(std::forward<Args>(args)...);
      },
      [](void* from, void* to) noexcept { std::memcpy(to, from, sizeof(F*)); },
      [](void* storage) noexcept { delete heap_target<F>(storage); },
  };

  void relocate_from(SmallFunction& other) noexcept {
    if (ops_->relocate != nullptr) {
      ops_->relocate(other.storage_, storage_);
    } else {
      std::memcpy(storage_, other.storage_, InlineBytes);
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[InlineBytes];
  const Ops* ops_ = nullptr;
};

template <class Sig, std::size_t N>
[[nodiscard]] inline bool operator==(const SmallFunction<Sig, N>& fn,
                                     std::nullptr_t) noexcept {
  return !static_cast<bool>(fn);
}

}  // namespace qperc
