// FlatMap: a sorted-vector map for the simulator's hot per-packet tables.
//
// The transport hot path keeps several small ordered maps keyed by packet
// number, stream id, or byte offset (unacked packets, in-flight samples,
// stream tables, ACK ranges). Profiles show libstdc++'s rb-tree dominating
// trial time — not through allocation (the arena allocator already feeds the
// nodes) but through pointer-chasing: _Rb_tree_increment alone costs more
// than any single simulator function. These maps share a shape that a flat
// layout exploits:
//   * keys are inserted in (almost always) increasing order — packet numbers
//     and stream ids grow monotonically, so insert is an append,
//   * lookups are lower_bound/find over a handful of live entries,
//   * erase happens mostly at the front (cumulative ACKs retire the oldest
//     packets first).
// FlatMap stores slots contiguously in key order and marks erased slots dead
// instead of shifting (an erase is a store, iteration skips dead slots, and a
// first-live cursor keeps begin() O(1) amortized as the front retires).
// Iteration order over live slots is exactly std::map's key order, so every
// consumer sees the same sequence of entries and results stay bit-identical.
//
// Deliberate differences from std::map:
//   * slots are recycled only by key revival; capacity is released by clear()
//     or destruction — per-trial tables on a per-trial arena, so unbounded
//     growth is bounded by the trial,
//   * iterators are invalidated by insertion (vector semantics); the hot
//     loops either iterate-and-erase or insert, never both at once,
//   * value_type is pair<Key, V>, not pair<const Key, V> — keys of live
//     slots must not be mutated through iterators (nothing does).
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "util/arena.hpp"
#include "util/check.hpp"

namespace qperc {

template <class Key, class V>
class FlatMap {
 public:
  using value_type = std::pair<Key, V>;

 private:
  struct Slot {
    value_type kv;
    bool live = true;
    template <class... Args>
    Slot(Key key, Args&&... args)
        : kv(std::piecewise_construct, std::forward_as_tuple(key),
             std::forward_as_tuple(std::forward<Args>(args)...)) {}
  };
  using Storage = std::vector<Slot, ArenaAllocator<Slot>>;

  template <bool Const>
  class Iter {
    using SlotPtr = std::conditional_t<Const, const Slot*, Slot*>;
    using Ref = std::conditional_t<Const, const value_type&, value_type&>;
    using Ptr = std::conditional_t<Const, const value_type*, value_type*>;

   public:
    Iter() = default;
    Iter(SlotPtr cur, SlotPtr end) noexcept : cur_(cur), end_(end) { skip_dead(); }

    [[nodiscard]] Ref operator*() const noexcept { return cur_->kv; }
    [[nodiscard]] Ptr operator->() const noexcept { return &cur_->kv; }

    Iter& operator++() noexcept {
      ++cur_;
      skip_dead();
      return *this;
    }

    [[nodiscard]] bool operator==(const Iter& other) const noexcept {
      return cur_ == other.cur_;
    }
    [[nodiscard]] bool operator!=(const Iter& other) const noexcept {
      return cur_ != other.cur_;
    }

   private:
    void skip_dead() noexcept {
      while (cur_ != end_ && !cur_->live) ++cur_;
    }

    SlotPtr cur_ = nullptr;
    SlotPtr end_ = nullptr;
    friend class FlatMap;
  };

 public:
  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  explicit FlatMap(Arena& arena) : slots_(ArenaAllocator<Slot>(arena)) {}

  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  [[nodiscard]] iterator begin() noexcept { return make_iter(first_live_); }
  [[nodiscard]] iterator end() noexcept { return make_iter(slots_.size()); }
  [[nodiscard]] const_iterator begin() const noexcept { return make_citer(first_live_); }
  [[nodiscard]] const_iterator end() const noexcept { return make_citer(slots_.size()); }

  /// Key of the last live entry. Requires a non-empty map.
  [[nodiscard]] const Key& back_key() const noexcept {
    QPERC_DCHECK(!empty()) << "back_key() on an empty FlatMap";
    std::size_t i = slots_.size();
    while (!slots_[--i].live) {}
    return slots_[i].kv.first;
  }

  [[nodiscard]] iterator find(Key key) noexcept {
    const std::size_t pos = lower_bound_index(key);
    if (pos < slots_.size() && slots_[pos].kv.first == key && slots_[pos].live) {
      return make_iter(pos);
    }
    return end();
  }
  [[nodiscard]] const_iterator find(Key key) const noexcept {
    const std::size_t pos = lower_bound_index(key);
    if (pos < slots_.size() && slots_[pos].kv.first == key && slots_[pos].live) {
      return make_citer(pos);
    }
    return make_citer(slots_.size());
  }

  [[nodiscard]] bool contains(Key key) const noexcept { return find(key) != end(); }

  /// First live entry with key >= `key` (std::map::lower_bound).
  [[nodiscard]] iterator lower_bound(Key key) noexcept {
    return make_iter(lower_bound_index(key));
  }

  template <class... Args>
  std::pair<iterator, bool> try_emplace(Key key, Args&&... args) {
    // Fast path: packet numbers and stream ids grow, so almost every new key
    // appends past the current maximum and no shifting ever happens.
    if (slots_.empty() || key > slots_.back().kv.first) {
      slots_.emplace_back(key, std::forward<Args>(args)...);
      mark_live(slots_.size() - 1);
      return {make_iter(slots_.size() - 1), true};
    }
    const std::size_t pos = lower_bound_index_raw(key);
    if (pos < slots_.size() && slots_[pos].kv.first == key) {
      if (slots_[pos].live) return {make_iter(pos), false};
      // Revive a tombstone: same key re-inserted after an erase.
      slots_[pos].kv.second = V(std::forward<Args>(args)...);
      mark_live(pos);
      return {make_iter(pos), true};
    }
    // Out-of-order key (rare: reordered arrivals opening a gap): a real
    // sorted insert, O(n) in the tail beyond it.
    slots_.emplace(slots_.begin() + static_cast<std::ptrdiff_t>(pos), key,
                   std::forward<Args>(args)...);
    mark_live(pos);
    return {make_iter(pos), true};
  }

  V& operator[](Key key) { return try_emplace(key).first->second; }

  /// Tombstones the slot; returns the next live entry (std::map::erase).
  iterator erase(iterator it) noexcept {
    QPERC_DCHECK(it.cur_ != nullptr && it.cur_->live) << "erase of a dead slot";
    it.cur_->live = false;
    --live_;
    const auto pos = static_cast<std::size_t>(it.cur_ - slots_.data());
    if (pos == first_live_) advance_first_live();
    ++it;
    return it;
  }

  /// Erases by key if present; returns the number of entries removed (0/1).
  std::size_t erase(Key key) noexcept {
    iterator it = find(key);
    if (it == end()) return 0;
    erase(it);
    return 1;
  }

  void clear() noexcept {
    slots_.clear();
    live_ = 0;
    first_live_ = 0;
  }

 private:
  [[nodiscard]] iterator make_iter(std::size_t pos) noexcept {
    return iterator(slots_.data() + pos, slots_.data() + slots_.size());
  }
  [[nodiscard]] const_iterator make_citer(std::size_t pos) const noexcept {
    return const_iterator(slots_.data() + pos, slots_.data() + slots_.size());
  }

  /// Index of the first slot (live or dead) with key >= `key`. Keys stay
  /// sorted across tombstoning, so the search spans all slots.
  [[nodiscard]] std::size_t lower_bound_index_raw(Key key) const noexcept {
    std::size_t lo = 0;
    std::size_t hi = slots_.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (slots_[mid].kv.first < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  [[nodiscard]] std::size_t lower_bound_index(Key key) const noexcept {
    // Everything before the first-live cursor is dead; skip it wholesale.
    return std::max(lower_bound_index_raw(key), first_live_);
  }

  void mark_live(std::size_t pos) noexcept {
    slots_[pos].live = true;
    ++live_;
    if (pos < first_live_) first_live_ = pos;
  }

  void advance_first_live() noexcept {
    while (first_live_ < slots_.size() && !slots_[first_live_].live) ++first_live_;
  }

  Storage slots_;
  std::size_t live_ = 0;
  /// Index of the first live slot (== slots_.size() when empty): cumulative
  /// ACKs retire the front, so begin() stays O(1) amortized.
  std::size_t first_live_ = 0;
};

}  // namespace qperc
