#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace qperc {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::add_rule() { rows_.emplace_back(); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  const auto print_rule = [&] {
    for (const auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto print_cells = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      os << ' ' << std::left << std::setw(static_cast<int>(widths[i])) << cell << " |";
    }
    os << '\n';
  };

  print_cells(header_);
  print_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_rule();
    } else {
      print_cells(row);
    }
  }
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

void TextTable::print_csv(std::ostream& os) const {
  const auto print_cells = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) os << ',';
      os << cells[i];
    }
    os << '\n';
  };
  print_cells(header_);
  for (const auto& row : rows_) {
    if (!row.empty()) print_cells(row);
  }
}

std::string fmt_fixed(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_percent(double fraction, int precision) {
  return fmt_fixed(fraction * 100.0, precision) + "%";
}

std::string fmt_ms(double ms, int precision) { return fmt_fixed(ms, precision) + " ms"; }

}  // namespace qperc
