// Shared --flag parsing for the qperc subcommands (trial, campaign, torture,
// study, fairness, bench). One hardened implementation instead of five ad-hoc
// loops: an unknown flag, a stray positional argument, a malformed number, or
// a bad --shard I/N is a thrown std::invalid_argument, which main() turns
// into exit code 2 — bad input is never silently ignored or parsed as 0.
#pragma once

#include <charconv>
#include <initializer_list>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace qperc {

/// --flag value parser; flags may appear in any order. Each command hands
/// over its accepted flag names: an unknown flag, a stray positional
/// argument, or (via get_u64) a non-numeric value is a hard error instead
/// of being silently ignored or parsed as 0.
class Args {
 public:
  Args(int argc, char** argv, int first, std::string command,
       std::initializer_list<std::string_view> allowed)
      : command_(std::move(command)) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw std::invalid_argument("unexpected argument '" + key + "' for 'qperc " +
                                    command_ + "'");
      }
      key = key.substr(2);
      bool known = false;
      for (const auto candidate : allowed) known = known || candidate == key;
      if (!known) {
        throw std::invalid_argument("unknown flag --" + key + " for 'qperc " + command_ +
                                    "' (see `qperc` usage)");
      }
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "true";
      }
    }
  }

  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    const std::string& text = it->second;
    std::uint64_t value = 0;
    const auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || end != text.data() + text.size()) {
      throw std::invalid_argument("--" + key + " expects a non-negative integer, got '" +
                                  text + "'");
    }
    return value;
  }
  [[nodiscard]] double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    const std::string& text = it->second;
    double value = 0.0;
    const auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || end != text.data() + text.size()) {
      throw std::invalid_argument("--" + key + " expects a number, got '" + text + "'");
    }
    return value;
  }
  [[nodiscard]] bool has(const std::string& key) const { return values_.contains(key); }

 private:
  std::string command_;
  std::map<std::string, std::string> values_;
};

/// Splits "A,B,C" into {"A","B","C"}, dropping empty fields.
inline std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : csv) {
    if (c == ',') {
      if (!current.empty()) parts.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) parts.push_back(std::move(current));
  return parts;
}

/// Applies a `--shard I/N` flag (if present) to the given shard geometry.
/// Throws on anything that is not two integers separated by '/'.
inline void apply_shard_flag(const Args& args, unsigned& shard_index,
                             unsigned& shard_count) {
  if (!args.has("shard")) return;
  const std::string shard = args.get("shard", "0/1");
  const auto slash = shard.find('/');
  bool ok = slash != std::string::npos;
  if (ok) {
    try {
      shard_index = static_cast<unsigned>(std::stoul(shard.substr(0, slash)));
      shard_count = static_cast<unsigned>(std::stoul(shard.substr(slash + 1)));
    } catch (const std::exception&) {
      ok = false;
    }
  }
  if (!ok) {
    throw std::invalid_argument("--shard expects I/N (e.g. --shard 0/4), got '" + shard +
                                "'");
  }
}

}  // namespace qperc
