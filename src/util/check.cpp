#include "util/check.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace qperc::check {

void throw_invalid_argument(const char* what) { throw std::invalid_argument(what); }
void throw_out_of_range(const char* what) { throw std::out_of_range(what); }
void throw_runtime_error(const char* what) { throw std::runtime_error(what); }
namespace {

ViolationHandler g_handler = &abort_handler;

}  // namespace

ViolationHandler set_violation_handler(ViolationHandler handler) {
  ViolationHandler previous = g_handler;
  g_handler = handler != nullptr ? handler : &abort_handler;
  return previous;
}

void abort_handler(const char* /*file*/, int /*line*/, const char* /*expr*/,
                   const std::string& message) {
  std::fprintf(stderr, "qperc invariant violation: %s\n", message.c_str());
  std::fflush(stderr);
  std::abort();
}

void report_violation(const char* file, int line, const char* expr,
                      const std::string& message) {
  g_handler(file, line, expr, message);
}

}  // namespace qperc::check
