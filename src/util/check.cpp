#include "util/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace qperc::check {
namespace {

ViolationHandler g_handler = &abort_handler;

}  // namespace

ViolationHandler set_violation_handler(ViolationHandler handler) {
  ViolationHandler previous = g_handler;
  g_handler = handler != nullptr ? handler : &abort_handler;
  return previous;
}

void abort_handler(const char* /*file*/, int /*line*/, const char* /*expr*/,
                   const std::string& message) {
  std::fprintf(stderr, "qperc invariant violation: %s\n", message.c_str());
  std::fflush(stderr);
  std::abort();
}

void report_violation(const char* file, int line, const char* expr,
                      const std::string& message) {
  g_handler(file, line, expr, message);
}

}  // namespace qperc::check
