// Strong types for link rates and byte quantities.
#pragma once

#include <cstdint>

#include "util/time.hpp"

namespace qperc {

/// A data rate, stored in bits per second. Strongly typed so a bandwidth can
/// never be confused with a byte count or a duration.
class DataRate {
 public:
  constexpr DataRate() = default;

  [[nodiscard]] static constexpr DataRate bits_per_second(std::uint64_t bps) {
    return DataRate{bps};
  }
  [[nodiscard]] static constexpr DataRate kilobits_per_second(std::uint64_t kbps) {
    return DataRate{kbps * 1000};
  }
  [[nodiscard]] static constexpr DataRate megabits_per_second(double mbps) {
    return DataRate{static_cast<std::uint64_t>(mbps * 1e6)};
  }
  [[nodiscard]] static constexpr DataRate bytes_per_second(double byps) {
    return DataRate{static_cast<std::uint64_t>(byps * 8.0)};
  }

  /// Rate inferred from transferring `bytes` over `d` (used by BBR's
  /// delivery-rate estimator).
  [[nodiscard]] static constexpr DataRate from_bytes_and_duration(std::uint64_t bytes,
                                                                  SimDuration d) {
    if (d <= SimDuration::zero()) return DataRate{0};
    const double seconds = to_seconds(d);
    return DataRate{static_cast<std::uint64_t>(static_cast<double>(bytes) * 8.0 / seconds)};
  }

  [[nodiscard]] constexpr std::uint64_t bps() const noexcept { return bits_per_second_; }
  [[nodiscard]] constexpr double megabits() const noexcept {
    return static_cast<double>(bits_per_second_) / 1e6;
  }
  [[nodiscard]] constexpr double bytes_per_second_d() const noexcept {
    return static_cast<double>(bits_per_second_) / 8.0;
  }
  [[nodiscard]] constexpr bool is_zero() const noexcept { return bits_per_second_ == 0; }

  /// Wire time for `bytes` at this rate. Zero rate yields kNoTime-like huge value
  /// guarded by callers; we return max to make misuse loud.
  [[nodiscard]] constexpr SimDuration transmission_time(std::uint64_t bytes) const {
    if (bits_per_second_ == 0) return SimDuration::max();
    const double seconds = static_cast<double>(bytes) * 8.0 / static_cast<double>(bits_per_second_);
    return from_seconds(seconds);
  }

  /// Bytes that can be sent in `d` at this rate.
  [[nodiscard]] constexpr std::uint64_t bytes_in(SimDuration d) const {
    return static_cast<std::uint64_t>(bytes_per_second_d() * to_seconds(d));
  }

  [[nodiscard]] constexpr DataRate scaled(double factor) const {
    return DataRate{static_cast<std::uint64_t>(static_cast<double>(bits_per_second_) * factor)};
  }

  friend constexpr bool operator==(DataRate, DataRate) = default;
  friend constexpr auto operator<=>(DataRate a, DataRate b) {
    return a.bits_per_second_ <=> b.bits_per_second_;
  }

 private:
  constexpr explicit DataRate(std::uint64_t bps) : bits_per_second_(bps) {}
  std::uint64_t bits_per_second_ = 0;
};

/// Bandwidth-delay product in bytes.
[[nodiscard]] constexpr std::uint64_t bdp_bytes(DataRate rate, SimDuration rtt) {
  return rate.bytes_in(rtt);
}

}  // namespace qperc
