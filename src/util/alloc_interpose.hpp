// Counting replacement for global operator new/delete.
//
// Include this header in EXACTLY ONE translation unit of a binary (usually
// the file holding main()): replacement allocation functions must be
// non-inline, so a second inclusion in the same binary is an ODR violation
// the linker will reject. The shim is how the repo's "allocation-free hot
// path" claims stay measured rather than asserted — bench_micro_perf, the
// `qperc bench throughput` subcommand, and tests/alloc_test.cpp all count
// with it (see docs/PERFORMANCE.md).
//
// Counting is a single relaxed atomic increment per allocation: cheap enough
// to leave on for whole-binary baselines, and thread-safe so campaign worker
// threads do not race the counter.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace qperc {

namespace detail {
inline std::atomic<std::uint64_t> g_heap_allocations{0};
inline std::atomic<std::uint64_t> g_heap_bytes{0};
}  // namespace detail

/// Global heap allocations observed since process start (monotonic).
/// Subtract two readings to count a region's allocations.
[[nodiscard]] inline std::uint64_t heap_allocations() noexcept {
  return detail::g_heap_allocations.load(std::memory_order_relaxed);
}

/// Bytes requested from the heap since process start (monotonic; requested
/// sizes, not allocator-rounded ones). Subtract two readings to bound a
/// region's allocation volume — how the bytes_per_participant bench metric
/// and the population study's O(1)-memory budget test are measured.
[[nodiscard]] inline std::uint64_t heap_bytes_allocated() noexcept {
  return detail::g_heap_bytes.load(std::memory_order_relaxed);
}

}  // namespace qperc

// GCC pairs the replaced operator new (malloc) with the replaced operator
// delete (free) just fine at runtime, but its mismatched-new-delete analysis
// does not model user replacements; silence it for the interposer only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  qperc::detail::g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  qperc::detail::g_heap_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  qperc::detail::g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  qperc::detail::g_heap_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size);
}
void* operator new[](std::size_t size) {
  qperc::detail::g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  qperc::detail::g_heap_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  qperc::detail::g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  qperc::detail::g_heap_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

#pragma GCC diagnostic pop
