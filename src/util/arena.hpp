// Monotonic per-trial arena: the allocation backbone of the trial hot path.
//
// A page-load trial churns through thousands of short-lived objects — wire
// payloads, SACK/ACK ranges, stream frames, reassembly maps, HTTP stream
// state — all of which die together when the trial ends. The Arena exploits
// that shared lifetime: allocation is a pointer bump into large blocks, and
// reset() rewinds the bump pointer while keeping every block, so after the
// first trial warms the block chain a steady-state trial performs zero heap
// allocations for all of this traffic (see docs/PERFORMANCE.md for the full
// memory model and the rules about what may allocate in the hot path).
//
// Three deliberate restrictions keep the design honest:
//   * no per-object free: deallocate is a no-op; memory is reclaimed only by
//     reset(). This is exactly right for trial-scoped state and wrong for
//     anything that must outlive a trial — results are copied out to normal
//     heap containers before reset.
//   * create<T>() requires trivially destructible T: reset() never runs
//     destructors, so types that own heap resources cannot live here.
//   * single-threaded: one Arena belongs to one Simulator / TrialContext;
//     campaign workers each own their own context.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace qperc {

class Arena {
 public:
  /// Blocks start at 64 KiB and double until kMaxBlockBytes; one trial fits
  /// in a handful of blocks, so steady state never grows the chain.
  static constexpr std::size_t kInitialBlockBytes = 64 * 1024;
  static constexpr std::size_t kMaxBlockBytes = 4 * 1024 * 1024;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` aligned to `align`. Never returns nullptr;
  /// alignment must be a power of two no stronger than max_align_t.
  [[nodiscard]] void* allocate(std::size_t bytes,
                               std::size_t align = alignof(std::max_align_t)) {
    QPERC_DCHECK(align != 0 && (align & (align - 1)) == 0) << "alignment must be a power of two";
    QPERC_DCHECK(align <= alignof(std::max_align_t)) << "over-aligned arena allocation";
    std::size_t offset = (offset_ + align - 1) & ~(align - 1);
    if (block_ >= blocks_.size() || offset + bytes > blocks_[block_].size) {
      advance_block(bytes + align);
      offset = (offset_ + align - 1) & ~(align - 1);
    }
    std::byte* p = blocks_[block_].data.get() + offset;
    offset_ = offset + bytes;
    return p;
  }

  /// Placement-constructs a T in the arena. T must be trivially destructible:
  /// reset() rewinds storage without running destructors.
  template <class T, class... Args>
  [[nodiscard]] T* create(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are reclaimed without destructors");
    return ::new (allocate(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
  }

  /// Allocates an uninitialized array of trivially destructible T.
  template <class T>
  [[nodiscard]] T* allocate_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are reclaimed without destructors");
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Rewinds to empty, keeping every block for reuse. O(1); runs no
  /// destructors (see create<T> contract).
  void reset() noexcept {
    block_ = 0;
    offset_ = 0;
  }

  /// Bytes handed out since the last reset (including alignment padding).
  [[nodiscard]] std::size_t bytes_used() const noexcept {
    std::size_t used = offset_;
    for (std::size_t i = 0; i < block_ && i < blocks_.size(); ++i) used += blocks_[i].size;
    return used;
  }
  /// Total bytes owned across all blocks (the steady-state footprint).
  [[nodiscard]] std::size_t bytes_reserved() const noexcept {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }
  [[nodiscard]] std::size_t block_count() const noexcept { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  /// Moves to the next block able to hold `min_bytes`, appending a new one
  /// (geometric growth) only when the existing chain runs out. Cold: steady
  /// state bumps within warm blocks; this runs only while the chain grows
  /// during the first trial (and its heap traffic is the ratcheted warm-up
  /// cost, not a steady-state allocation).
  QPERC_COLD_PATH void advance_block(std::size_t min_bytes) {
    while (block_ + 1 < blocks_.size()) {
      ++block_;
      offset_ = 0;
      if (blocks_[block_].size >= min_bytes) return;
    }
    std::size_t next = blocks_.empty() ? kInitialBlockBytes
                                       : std::min(blocks_.back().size * 2, kMaxBlockBytes);
    if (next < min_bytes) next = min_bytes;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(next), next});
    block_ = blocks_.size() - 1;
    offset_ = 0;
  }

  std::vector<Block> blocks_;
  std::size_t block_ = 0;   // index of the block currently being bumped
  std::size_t offset_ = 0;  // bump offset within blocks_[block_]
};

/// Minimal growable array backed by an Arena: {pointer, size, capacity} with
/// geometric growth, no shrink, and no destructor work. This is the
/// replacement for std::vector in wire payloads (stream frames, ACK ranges,
/// SACK lists) — trivially destructible, so payloads can live in the arena.
///
/// push_back takes the Arena explicitly rather than storing a back-pointer:
/// payload types stay 16 bytes smaller and can never outlive their arena by
/// accident (there is nothing to dangle).
template <class T>
class ArenaVec {
  static_assert(std::is_trivially_copyable_v<T> && std::is_trivially_destructible_v<T>,
                "ArenaVec elements must be trivially copyable and destructible");

 public:
  ArenaVec() = default;
  ArenaVec(ArenaVec&& other) noexcept
      : data_(other.data_), size_(other.size_), capacity_(other.capacity_) {
    other.data_ = nullptr;
    other.size_ = 0;
    other.capacity_ = 0;
  }
  ArenaVec& operator=(ArenaVec&& other) noexcept {
    data_ = other.data_;
    size_ = other.size_;
    capacity_ = other.capacity_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.capacity_ = 0;
    return *this;
  }
  ArenaVec(const ArenaVec&) = delete;
  ArenaVec& operator=(const ArenaVec&) = delete;

  void push_back(Arena& arena, const T& value) {
    if (size_ == capacity_) grow(arena);
    data_[size_++] = value;
  }
  template <class... Args>
  T& emplace_back(Arena& arena, Args&&... args) {
    if (size_ == capacity_) grow(arena);
    data_[size_] = T{std::forward<Args>(args)...};
    return data_[size_++];
  }
  /// Pre-sizes capacity so subsequent push_backs up to `count` never grow.
  void reserve(Arena& arena, std::uint32_t count) {
    if (count > capacity_) regrow(arena, count);
  }

  void clear() noexcept { size_ = 0; }

  [[nodiscard]] T* begin() noexcept { return data_; }
  [[nodiscard]] T* end() noexcept { return data_ + size_; }
  [[nodiscard]] const T* begin() const noexcept { return data_; }
  [[nodiscard]] const T* end() const noexcept { return data_ + size_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] std::uint32_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept { return data_[i]; }
  [[nodiscard]] T& front() noexcept { return data_[0]; }
  [[nodiscard]] const T& front() const noexcept { return data_[0]; }
  [[nodiscard]] T& back() noexcept { return data_[size_ - 1]; }
  [[nodiscard]] const T& back() const noexcept { return data_[size_ - 1]; }

 private:
  void grow(Arena& arena) { regrow(arena, capacity_ == 0 ? 4 : capacity_ * 2); }
  void regrow(Arena& arena, std::uint32_t new_capacity) {
    T* next = arena.allocate_array<T>(new_capacity);
    if (size_ != 0) std::memcpy(next, data_, size_ * sizeof(T));
    data_ = next;
    capacity_ = new_capacity;
  }

  T* data_ = nullptr;
  std::uint32_t size_ = 0;
  std::uint32_t capacity_ = 0;
};

/// std-compatible allocator adapter so node-based containers (the reassembly
/// and retransmission std::maps, HTTP stream tables) draw their nodes from
/// the trial arena. deallocate is a no-op — nodes are reclaimed wholesale at
/// Arena::reset() — which also turns erase/insert churn into pure pointer
/// bumps. Containers using this must hold only trivially-destructible-ish
/// values in the sense that their element destructors free no arena-external
/// resources the container is expected to return (unique_ptr values are fine:
/// their destructors still run on erase; it is only the *node* memory that is
/// arena-owned).
template <class T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& arena) noexcept : arena_(&arena) {}
  template <class U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept  // NOLINT(google-explicit-constructor)
      : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* /*p*/, std::size_t /*n*/) noexcept {}

  [[nodiscard]] Arena* arena() const noexcept { return arena_; }

  template <class U>
  [[nodiscard]] bool operator==(const ArenaAllocator<U>& other) const noexcept {
    return arena_ == other.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace qperc
