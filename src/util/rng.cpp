#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace qperc {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

/// SplitMix64 step; used only for seeding and forking.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo >= hi) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Modulo bias is negligible for span << 2^64 (simulation use only).
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  spare_normal_ = radius * std::sin(angle);
  has_spare_normal_ = true;
  return mean + stddev * radius * std::cos(angle);
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double mean) {
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return -mean * std::log(u);
}

std::uint64_t Rng::poisson(double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda > 60.0) {
    // Normal approximation with continuity correction.
    const double draw = normal(lambda, std::sqrt(lambda));
    return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
  }
  const double threshold = std::exp(-lambda);
  std::uint64_t count = 0;
  double product = uniform();
  while (product > threshold) {
    ++count;
    product *= uniform();
  }
  return count;
}

Rng Rng::fork(std::uint64_t tag) const {
  // Mix the parent's full state with the tag through SplitMix64 so distinct
  // tags give decorrelated children without advancing the parent.
  std::uint64_t sm = state_[0] ^ rotl(state_[1], 13) ^ rotl(state_[2], 29) ^
                     rotl(state_[3], 47) ^ (tag * 0x9E3779B97F4A7C15ULL + 1);
  return Rng{splitmix64(sm)};
}

Rng Rng::fork(std::string_view label) const { return fork(fnv1a(label)); }

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

}  // namespace qperc
