// Simulation time primitives.
//
// All modules share one clock type: nanoseconds since simulation start.
// Using std::chrono gives unit safety (no bare "double seconds" anywhere)
// at zero runtime cost.
#pragma once

#include <chrono>
#include <cstdint>

namespace qperc {

/// Point in simulated time, measured from the start of the simulation.
using SimTime = std::chrono::nanoseconds;

/// Span of simulated time.
using SimDuration = std::chrono::nanoseconds;

using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::nanoseconds;
using std::chrono::seconds;

/// Converts a simulated duration to fractional seconds (for reporting only;
/// never use double seconds for scheduling).
[[nodiscard]] constexpr double to_seconds(SimDuration d) noexcept {
  return std::chrono::duration<double>(d).count();
}

/// Converts a simulated duration to fractional milliseconds (reporting only).
[[nodiscard]] constexpr double to_millis(SimDuration d) noexcept {
  return std::chrono::duration<double, std::milli>(d).count();
}

/// Builds a duration from fractional seconds, rounding to nanoseconds.
[[nodiscard]] constexpr SimDuration from_seconds(double s) noexcept {
  return std::chrono::duration_cast<SimDuration>(std::chrono::duration<double>(s));
}

/// Sentinel for "no deadline".
inline constexpr SimTime kNoTime = SimTime::max();

}  // namespace qperc
