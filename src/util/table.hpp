// Fixed-width console table printer used by the benchmark harness to emit
// paper-style tables and figure series.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace qperc {

/// Accumulates rows of string cells and renders them with aligned columns.
///
/// Numeric formatting is left to the caller (see `fmt_*` helpers below) so a
/// table can mix precisions per column, exactly like the paper's tables.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Inserts a horizontal rule before the next added row.
  void add_rule();

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;
  /// Comma-separated rendering (for piping results into plotting scripts).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == rule
};

/// Fixed-precision float formatting ("3.14").
[[nodiscard]] std::string fmt_fixed(double v, int precision);
/// Percentage formatting ("12.3%") of a fraction in [0,1].
[[nodiscard]] std::string fmt_percent(double fraction, int precision = 1);
/// Millisecond formatting of a double ms value ("241 ms").
[[nodiscard]] std::string fmt_ms(double ms, int precision = 0);

}  // namespace qperc
