// Runtime invariant checking for the simulator core.
//
// Two tiers, mirroring the usual CHECK/DCHECK split:
//
//   * QPERC_CHECK(cond)        — always compiled, in every build type. For
//     invariants whose violation means the simulation state is corrupt and
//     any result derived from it is science-invalidating garbage (e.g. a
//     peer acknowledging bytes that were never sent).
//   * QPERC_DCHECK(cond)       — compiled only when invariants are enabled:
//     Debug builds, or any build configured with -DQPERC_ENABLE_INVARIANTS=ON.
//     In release builds without the option the condition is NOT evaluated
//     (a true no-op: side effects in the expression do not run), so hot
//     paths stay at production speed and golden timings stay bit-exact.
//
// Comparison forms (QPERC_CHECK_EQ/NE/LT/LE/GT/GE and the QPERC_DCHECK_*
// twins) print both operand values on failure. Every macro accepts a
// streamed trailing message:
//
//   QPERC_CHECK_LE(highest_cum_ack_, next_seq_) << "SND.UNA ran past SND.NXT";
//
// A violation formats "file:line: QPERC_CHECK(expr) failed: a vs b — msg"
// and calls the installed violation handler. The default handler writes to
// stderr and aborts; tests install a counting handler via
// set_violation_handler() to observe violations without dying (see
// tests/check_test.cpp). A handler that returns lets execution continue past
// the failed check — acceptable only in tests.
//
// A translation unit may define QPERC_FORCE_DISABLE_INVARIANTS before
// including this header to get the release no-op QPERC_DCHECK regardless of
// build flags (used by the release-semantics tests).
#pragma once

#include <chrono>
#include <ostream>
#include <sstream>
#include <string>

// QPERC_COLD_PATH: marks a function as off the trial hot path.
//
// Semantics, enforced by scripts/analyze_hotpath.py: the static analyzer
// walks the whole-program call graph from the hot-path roots
// (TrialContext::run, Simulator::run, the study/fairness inner loops) and
// bans allocation, wall-clock, getenv, locale, iostream, and throw symbols
// from everything it reaches — except through functions carrying this
// attribute, which act as traversal barriers. Use it on setup, teardown,
// validation, and reporting functions that are reachable from hot code but
// only ever run outside the steady-state loop (or on paths, like invariant
// failures, where the process is about to die anyway).
//
// Mechanically it expands to `cold` + `noinline`: `cold` places the function
// in a `.text.unlikely.*` section — the recognizable binary-level marker the
// analyzer keys on — and `noinline` guarantees the call site keeps a direct
// edge to that marked symbol instead of inlining the body into a hot
// section. (`cold` also tells the optimizer to favor size and to move the
// branch out of the hot layout, which is exactly right for these paths.)
#if defined(__GNUC__) || defined(__clang__)
#define QPERC_COLD_PATH __attribute__((cold, noinline))
#else
#define QPERC_COLD_PATH
#endif

namespace qperc::check {

/// Cold [[noreturn]] throw helpers for hot-reachable argument validation.
/// Throwing inline (`throw std::invalid_argument(...)`) plants __cxa_throw
/// and a std::string construction straight into the caller's text section;
/// routing the throw through these keeps hot functions free of banned
/// symbols while preserving the exact exception type and message.
[[noreturn]] QPERC_COLD_PATH void throw_invalid_argument(const char* what);
[[noreturn]] QPERC_COLD_PATH void throw_out_of_range(const char* what);
[[noreturn]] QPERC_COLD_PATH void throw_runtime_error(const char* what);

/// Receives one formatted violation. `file`/`line`/`expr` locate the failed
/// macro; `message` is the fully formatted report (location, expression,
/// operand values, streamed details). May return, in which case execution
/// continues past the check.
using ViolationHandler = void (*)(const char* file, int line, const char* expr,
                                  const std::string& message);

/// Installs `handler` process-wide and returns the previous one (never
/// nullptr; pass the return value back to restore). Not thread-safe against
/// concurrent violations — install handlers at test setup time only.
ViolationHandler set_violation_handler(ViolationHandler handler);

/// The stderr-and-abort default.
[[noreturn]] QPERC_COLD_PATH void abort_handler(const char* file, int line, const char* expr,
                                                const std::string& message);

/// Dispatches one violation to the installed handler.
QPERC_COLD_PATH void report_violation(const char* file, int line, const char* expr,
                                      const std::string& message);

/// Prints a value for a failure message. Falls back for types without an
/// ostream operator<<: chrono durations print their tick count, anything
/// else prints a placeholder — the check itself never fails to format.
template <class T>
void print_value(std::ostream& os, const T& value) {
  // Durations first, normalized to nanosecond ticks: libstdc++ gained
  // chrono operator<< at different versions, so relying on it would make
  // failure text toolchain-dependent.
  if constexpr (requires { std::chrono::duration_cast<std::chrono::nanoseconds>(value); }) {
    os << std::chrono::duration_cast<std::chrono::nanoseconds>(value).count() << "ns";
  } else if constexpr (requires { os << value; }) {
    os << value;
  } else {
    os << "<unprintable>";
  }
}

/// Accumulates the failure report plus any streamed user message, then fires
/// the handler from its destructor (so the streamed details are included).
/// Every member is QPERC_COLD_PATH: a Failure only exists on the losing side
/// of a check, and the iostream/allocation traffic it performs must never be
/// attributed to the hot function hosting the check.
class Failure {
 public:
  QPERC_COLD_PATH Failure(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {
    stream_ << file << ":" << line << ": " << expr << " failed";
  }
  template <class A, class B>
  QPERC_COLD_PATH Failure(const char* file, int line, const char* expr, const A& a, const B& b)
      : Failure(file, line, expr) {
    stream_ << ": ";
    print_value(stream_, a);
    stream_ << " vs ";
    print_value(stream_, b);
  }
  Failure(const Failure&) = delete;
  Failure& operator=(const Failure&) = delete;
  QPERC_COLD_PATH ~Failure() { report_violation(file_, line_, expr_, stream_.str()); }

  template <class T>
  QPERC_COLD_PATH Failure& operator<<(const T& value) {
    if (!message_started_) {
      stream_ << " — ";
      message_started_ = true;
    }
    print_value(stream_, value);
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  bool message_started_ = false;
  std::ostringstream stream_;
};

/// glog-style voidifier: `&` binds looser than `<<`, so the whole streamed
/// failure expression collapses to void inside the ternary below.
struct Voidify {
  // const ref so both a bare `Failure(...)` prvalue and the `Failure&` that
  // operator<< returns bind; the temporary still reports at full-expression
  // end, after any streamed message.
  void operator&(const Failure&) const noexcept {}
};

}  // namespace qperc::check

// Always-on invariants. The Failure temporary lives to the end of the full
// expression, collecting any streamed message before its destructor reports.
#define QPERC_CHECK(cond)                        \
  (__builtin_expect(static_cast<bool>(cond), 1)) \
      ? (void)0                                  \
      : ::qperc::check::Voidify() &              \
            ::qperc::check::Failure(__FILE__, __LINE__, "QPERC_CHECK(" #cond ")")

#define QPERC_CHECK_OP_IMPL(macro_name, op, a, b)                                     \
  (__builtin_expect(static_cast<bool>((a)op(b)), 1))                                  \
      ? (void)0                                                                       \
      : ::qperc::check::Voidify() &                                                   \
            ::qperc::check::Failure(__FILE__, __LINE__,                               \
                                    macro_name "(" #a ", " #b ")", (a), (b))

#define QPERC_CHECK_EQ(a, b) QPERC_CHECK_OP_IMPL("QPERC_CHECK_EQ", ==, a, b)
#define QPERC_CHECK_NE(a, b) QPERC_CHECK_OP_IMPL("QPERC_CHECK_NE", !=, a, b)
#define QPERC_CHECK_LT(a, b) QPERC_CHECK_OP_IMPL("QPERC_CHECK_LT", <, a, b)
#define QPERC_CHECK_LE(a, b) QPERC_CHECK_OP_IMPL("QPERC_CHECK_LE", <=, a, b)
#define QPERC_CHECK_GT(a, b) QPERC_CHECK_OP_IMPL("QPERC_CHECK_GT", >, a, b)
#define QPERC_CHECK_GE(a, b) QPERC_CHECK_OP_IMPL("QPERC_CHECK_GE", >=, a, b)

// Debug-tier invariants: active in Debug builds or with
// -DQPERC_ENABLE_INVARIANTS=ON; otherwise compiled to nothing (the condition
// is parsed — names stay checked and "used" — but never evaluated).
#if defined(QPERC_FORCE_DISABLE_INVARIANTS)
#define QPERC_INVARIANTS_ENABLED 0
#elif defined(QPERC_ENABLE_INVARIANTS) || !defined(NDEBUG)
#define QPERC_INVARIANTS_ENABLED 1
#else
#define QPERC_INVARIANTS_ENABLED 0
#endif

#if QPERC_INVARIANTS_ENABLED
#define QPERC_DCHECK(cond) QPERC_CHECK(cond)
#define QPERC_DCHECK_EQ(a, b) QPERC_CHECK_EQ(a, b)
#define QPERC_DCHECK_NE(a, b) QPERC_CHECK_NE(a, b)
#define QPERC_DCHECK_LT(a, b) QPERC_CHECK_LT(a, b)
#define QPERC_DCHECK_LE(a, b) QPERC_CHECK_LE(a, b)
#define QPERC_DCHECK_GT(a, b) QPERC_CHECK_GT(a, b)
#define QPERC_DCHECK_GE(a, b) QPERC_CHECK_GE(a, b)
#else
// `while (false)` keeps the expression compiled (typos and unused-variable
// warnings still surface) but never evaluated — the documented no-op.
#define QPERC_DCHECK(cond) \
  while (false) QPERC_CHECK(cond)
#define QPERC_DCHECK_EQ(a, b) \
  while (false) QPERC_CHECK_EQ(a, b)
#define QPERC_DCHECK_NE(a, b) \
  while (false) QPERC_CHECK_NE(a, b)
#define QPERC_DCHECK_LT(a, b) \
  while (false) QPERC_CHECK_LT(a, b)
#define QPERC_DCHECK_LE(a, b) \
  while (false) QPERC_CHECK_LE(a, b)
#define QPERC_DCHECK_GT(a, b) \
  while (false) QPERC_CHECK_GT(a, b)
#define QPERC_DCHECK_GE(a, b) \
  while (false) QPERC_CHECK_GE(a, b)
#endif
