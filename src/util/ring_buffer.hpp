// A minimal grow-only FIFO ring over a contiguous slab.
//
// std::deque allocates and frees fixed-size blocks as the queue breathes, so
// a bottleneck link that oscillates between empty and full keeps hitting the
// allocator. This ring doubles its slab on overflow and then never gives the
// capacity back: after warm-up, push/pop are pointer arithmetic only. That is
// exactly the behaviour the zero-allocation steady state of the simulator
// needs from the link queues.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace qperc {

template <class T>
class RingBuffer {
 public:
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return slab_.size(); }

  void push_back(T value) {
    if (size_ == slab_.size()) grow();
    slab_[(head_ + size_) & (slab_.size() - 1)] = std::move(value);
    ++size_;
  }

  [[nodiscard]] T& front() noexcept {
    QPERC_DCHECK(!empty()) << "front() on an empty RingBuffer";
    return slab_[head_];
  }

  /// Element `i` positions behind the front (0 = front).
  [[nodiscard]] const T& at(std::size_t i) const noexcept {
    QPERC_DCHECK_LT(i, size_) << "RingBuffer::at out of range";
    return slab_[(head_ + i) & (slab_.size() - 1)];
  }

  T pop_front() {
    QPERC_DCHECK(!empty()) << "pop_front() on an empty RingBuffer";
    T value = std::move(slab_[head_]);
    head_ = (head_ + 1) & (slab_.size() - 1);
    --size_;
    return value;
  }

  void clear() noexcept {
    // Popped elements are moved-from but alive; drop them all at once.
    head_ = 0;
    size_ = 0;
  }

 private:
  void grow() {
    // Power-of-two capacity keeps the index wrap a mask instead of a modulo.
    const std::size_t next = slab_.empty() ? kInitialCapacity : slab_.size() * 2;
    std::vector<T> bigger(next);
    for (std::size_t i = 0; i < size_; ++i) {
      bigger[i] = std::move(slab_[(head_ + i) & (slab_.size() - 1)]);
    }
    slab_ = std::move(bigger);
    head_ = 0;
    // The wrap mask only works while the capacity stays a power of two.
    QPERC_DCHECK_EQ(slab_.size() & (slab_.size() - 1), 0u);
    QPERC_DCHECK_LE(size_, slab_.size());
  }

  static constexpr std::size_t kInitialCapacity = 16;

  std::vector<T> slab_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace qperc
