// Deterministic random number generation.
//
// Every stochastic element of the testbed (packet loss, website generation,
// rater behaviour) draws from an Rng forked from a master seed, so a whole
// experiment is reproducible from a single integer.
#pragma once

#include <cstdint>
#include <string_view>

namespace qperc {

/// xoshiro256++ generator seeded through SplitMix64.
///
/// Small, fast, and statistically strong enough for simulation workloads.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed);

  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next_u64(); }
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);
  /// Normal deviate (Box–Muller, cached spare).
  double normal(double mean, double stddev);
  /// Log-normal deviate with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma);
  /// Exponential deviate with the given mean.
  double exponential(double mean);
  /// Poisson deviate (Knuth for small lambda, normal approximation above 60).
  std::uint64_t poisson(double lambda);

  /// Derives an independent child generator. Children forked with distinct
  /// tags from the same parent state are decorrelated; forking does not
  /// perturb this generator's own stream.
  [[nodiscard]] Rng fork(std::uint64_t tag) const;
  /// Convenience: fork keyed by a string label (FNV-1a hashed).
  [[nodiscard]] Rng fork(std::string_view label) const;

 private:
  std::uint64_t state_[4];
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

/// FNV-1a 64-bit hash, used for stable string-keyed RNG forks.
[[nodiscard]] std::uint64_t fnv1a(std::string_view s) noexcept;

}  // namespace qperc
