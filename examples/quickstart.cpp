// Quickstart: load one website over the emulated DSL network with every
// protocol stack of Table 1 and print the technical metrics.
//
//   ./quickstart [site] [network]
//   e.g. ./quickstart wikipedia.org LTE
#include <iostream>
#include <string>

#include "core/protocol.hpp"
#include "core/trial.hpp"
#include "net/profile.hpp"
#include "util/table.hpp"
#include "web/website.hpp"

int main(int argc, char** argv) {
  using namespace qperc;
  const std::string site_name = argc > 1 ? argv[1] : "wikipedia.org";
  const std::string network_name = argc > 2 ? argv[2] : "DSL";

  // 1. Build the study catalog (36 synthetic sites, deterministic in the seed).
  const auto catalog = web::study_catalog(7);
  const web::Website* site = nullptr;
  for (const auto& candidate : catalog) {
    if (candidate.name == site_name) site = &candidate;
  }
  if (site == nullptr) {
    std::cerr << "unknown site '" << site_name << "'; available sites:\n";
    for (const auto& candidate : catalog) std::cerr << "  " << candidate.name << "\n";
    return 1;
  }

  // 2. Pick the emulated access network (Table 2).
  const net::NetworkProfile* profile = nullptr;
  for (const auto& candidate : net::all_profiles()) {
    if (candidate.name == network_name) profile = &candidate;
  }
  if (profile == nullptr) {
    std::cerr << "unknown network '" << network_name << "' (DSL, LTE, DA2GC, MSS)\n";
    return 1;
  }

  std::cout << "Loading " << site->name << " (" << site->object_count() << " objects, "
            << site->total_bytes() / 1024 << " kB, " << site->contacted_origins()
            << " origins) over " << profile->name << " ("
            << profile->downlink.megabits() << " Mbps down, "
            << to_millis(profile->min_rtt) << " ms RTT, "
            << profile->loss_rate * 100 << "% loss)\n\n";

  // 3. Run one trial per protocol configuration and print the visual metrics.
  TextTable table({"Protocol", "FVC", "SI", "VC85", "LVC", "PLT", "retx", "conns"});
  for (const auto& protocol : core::paper_protocols()) {
    const auto result = core::run_trial(core::TrialSpec(*site, protocol, *profile, /*seed=*/42));
    table.add_row({protocol.name, fmt_ms(result.metrics.fvc_ms()),
                   fmt_ms(result.metrics.si_ms()), fmt_ms(result.metrics.vc85_ms()),
                   fmt_ms(result.metrics.lvc_ms()), fmt_ms(result.metrics.plt_ms()),
                   std::to_string(result.transport.retransmissions),
                   std::to_string(result.connections_opened)});
  }
  table.print(std::cout);
  std::cout << "\nFVC = first visual change, SI = Speed Index, VC85 = 85% visually\n"
               "complete, LVC = last visual change, PLT = page load time (onload).\n";
  return 0;
}
