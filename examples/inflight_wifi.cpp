// The "on a plane" scenario: how do the five stacks feel on the two
// in-flight WiFi networks (DA2GC and MSS), where the paper finds QUIC's
// design actually improving the long tail of bad experiences?
#include <iostream>

#include "core/video.hpp"
#include "net/profile.hpp"
#include "study/participant.hpp"
#include "study/rater.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace qperc;
  const std::string site = argc > 1 ? argv[1] : "gov.uk";

  core::VideoLibrary library(7, 9);
  Rng rng(77);

  std::cout << "In-flight WiFi QoE for " << site << " (simulated crowd panel of 200)\n\n";
  for (const auto network : {net::NetworkKind::kDa2gc, net::NetworkKind::kMss}) {
    const auto& profile = net::profile_for(network);
    std::cout << profile.name << ": " << profile.downlink.megabits() << " Mbps, "
              << to_millis(profile.min_rtt) << " ms RTT, " << profile.loss_rate * 100
              << "% loss\n";
    TextTable table({"Protocol", "SI", "PLT", "mean rating (10-70)", "verdict"});
    for (const auto& protocol : core::paper_protocols()) {
      const auto& video = library.get(site, protocol.name, network);
      double sum = 0.0;
      constexpr int kPanel = 200;
      for (int i = 0; i < kPanel; ++i) {
        auto participant = study::sample_participant(study::Group::kMicroworker, rng);
        sum += study::rate_video(video, study::Context::kPlane, participant, rng);
      }
      const double mean_vote = sum / kPanel;
      const char* verdict = mean_vote >= 50   ? "good"
                            : mean_vote >= 40 ? "fair"
                            : mean_vote >= 30 ? "poor"
                            : mean_vote >= 20 ? "bad"
                                              : "extremely bad";
      table.add_row({protocol.name, fmt_ms(video.metrics.si_ms()),
                     fmt_ms(video.metrics.plt_ms()), fmt_fixed(mean_vote, 1), verdict});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Paper takeaway (§4.4): in the challenged in-flight networks QUIC's\n"
               "advanced design yields a more satisfying loading process, hinting at\n"
               "its potential to improve the long tail of bad experiences.\n";
  return 0;
}
