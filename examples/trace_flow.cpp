// Dumps a qlog-style structured trace of a small page load — handshake,
// transport, recovery, HTTP, browser, and link events — as JSON Lines on
// stdout, with an aggregate-counter summary on stderr.
//
//   ./trace_flow [site] [protocol] [network] > trace.jsonl
#include <iostream>

#include "core/protocol.hpp"
#include "core/trial.hpp"
#include "net/profile.hpp"
#include "trace/counters.hpp"
#include "trace/jsonl_sink.hpp"
#include "web/website.hpp"

namespace {

/// Streams JSONL to `os` while folding every event into TrialCounters.
class SummarizingSink final : public qperc::trace::TraceSink {
 public:
  explicit SummarizingSink(std::ostream& os) : jsonl_(os) {}
  void on_event(const qperc::trace::Event& event) override {
    jsonl_.on_event(event);
    counters_.observe(event);
  }
  [[nodiscard]] const qperc::trace::TrialCounters& counters() const { return counters_; }
  [[nodiscard]] std::uint64_t events_written() const { return jsonl_.events_written(); }

 private:
  qperc::trace::JsonlSink jsonl_;
  qperc::trace::TrialCounters counters_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace qperc;
  const std::string site_name = argc > 1 ? argv[1] : "apache.org";
  const std::string protocol_name = argc > 2 ? argv[2] : "QUIC";
  const std::string network_name = argc > 3 ? argv[3] : "LTE";

  const auto catalog = web::study_catalog(7);
  const web::Website* site = nullptr;
  for (const auto& candidate : catalog) {
    if (candidate.name == site_name) site = &candidate;
  }
  if (site == nullptr) {
    std::cerr << "unknown site\n";
    return 1;
  }
  const net::NetworkProfile* profile = &net::all_profiles()[1];
  for (const auto& candidate : net::all_profiles()) {
    if (candidate.name == network_name) profile = &candidate;
  }
  const auto& protocol = core::protocol_by_name(protocol_name);

  SummarizingSink sink(std::cout);
  const auto result =
      core::run_trial(core::TrialSpec(*site, protocol, *profile, /*seed=*/42).with_trace(&sink));

  const trace::TrialCounters& counters = sink.counters();
  std::cerr << site->name << " / " << protocol.name << " / " << profile->name << ": PLT "
            << result.metrics.plt_ms() << " ms, " << sink.events_written() << " events\n"
            << "handshake: " << counters.handshake_packets << " packets, first completed in "
            << to_millis(counters.first_handshake_duration) << " ms\n"
            << "recovery: " << counters.retransmissions << " retransmissions, "
            << counters.timeouts << " timeouts, " << counters.spurious_losses
            << " spurious losses\n"
            << "link: " << counters.link_deliveries << " deliveries, "
            << counters.queue_drops << " queue drops, " << counters.random_loss_drops
            << " random-loss drops\n";
  return 0;
}
