// Dumps a packet-level trace of a small page load — every enqueue, drop,
// and delivery on the emulated access link — as CSV on stdout.
//
//   ./trace_flow [site] [protocol] [network] > trace.csv
#include <iostream>

#include "browser/page_loader.hpp"
#include "core/protocol.hpp"
#include "http/session.hpp"
#include "net/packet_trace.hpp"
#include "net/profile.hpp"
#include "util/rng.hpp"
#include "web/website.hpp"

int main(int argc, char** argv) {
  using namespace qperc;
  const std::string site_name = argc > 1 ? argv[1] : "apache.org";
  const std::string protocol_name = argc > 2 ? argv[2] : "QUIC";
  const std::string network_name = argc > 3 ? argv[3] : "LTE";

  const auto catalog = web::study_catalog(7);
  const web::Website* site = nullptr;
  for (const auto& candidate : catalog) {
    if (candidate.name == site_name) site = &candidate;
  }
  if (site == nullptr) {
    std::cerr << "unknown site\n";
    return 1;
  }
  const net::NetworkProfile* profile = &net::all_profiles()[1];
  for (const auto& candidate : net::all_profiles()) {
    if (candidate.name == network_name) profile = &candidate;
  }
  const auto& protocol = core::protocol_by_name(protocol_name);

  sim::Simulator simulator;
  Rng rng(42);
  net::EmulatedNetwork network(simulator, *profile, rng.fork("network"));
  net::PacketTrace trace(simulator, network);

  browser::PageLoader::SessionFactory factory;
  if (protocol.transport == core::Transport::kQuic) {
    const auto config = protocol.quic_config();
    factory = [&, config](net::ServerId origin) {
      return http::make_quic_session(simulator, network, origin, config);
    };
  } else {
    const auto config = protocol.tcp_config();
    factory = [&, config](net::ServerId origin) {
      return http::make_h2_session(simulator, network, origin, config);
    };
  }
  const auto result =
      browser::load_page(simulator, *site, std::move(factory), rng.fork("browser"));

  trace.print_csv(std::cout);
  std::cerr << site->name << " / " << protocol.name << " / " << profile->name
            << ": PLT " << result.metrics.plt_ms() << " ms, " << trace.records().size()
            << " packet events, "
            << trace.count(net::Direction::kDownlink, net::LinkEvent::kDroppedQueueFull) +
                   trace.count(net::Direction::kDownlink, net::LinkEvent::kDroppedRandomLoss)
            << " downlink drops\n";
  return 0;
}
