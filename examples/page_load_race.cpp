// Side-by-side "A/B video": renders the visual-completeness curves of two
// protocol stacks as ASCII progress strips — the terminal analogue of the
// paired stimulus the paper's Study 1 shows its participants (Figure 1).
//
//   ./page_load_race [site] [network] [protocolA] [protocolB]
//   e.g. ./page_load_race etsy.com LTE QUIC TCP+
#include <algorithm>
#include <iostream>
#include <string>

#include "core/video.hpp"
#include "net/profile.hpp"
#include "study/participant.hpp"
#include "study/rater.hpp"
#include "util/rng.hpp"

namespace {

double completeness_at(const std::vector<qperc::browser::VcSample>& curve,
                       qperc::SimTime t) {
  double value = 0.0;
  for (const auto& sample : curve) {
    if (sample.time <= t) value = sample.completeness;
  }
  return value;
}

std::string strip(double completeness, int width = 40) {
  const int filled = static_cast<int>(completeness * width + 0.5);
  std::string bar(static_cast<std::size_t>(width), '.');
  std::fill_n(bar.begin(), std::clamp(filled, 0, width), '#');
  return bar;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qperc;
  const std::string site = argc > 1 ? argv[1] : "etsy.com";
  const std::string network_name = argc > 2 ? argv[2] : "LTE";
  const std::string proto_a = argc > 3 ? argv[3] : "QUIC";
  const std::string proto_b = argc > 4 ? argv[4] : "TCP+";

  net::NetworkKind network = net::NetworkKind::kLte;
  for (const auto& profile : net::all_profiles()) {
    if (profile.name == network_name) network = profile.kind;
  }

  // Produce the two "videos" exactly like the study harness (the typical
  // recording out of several seeded trials).
  core::VideoLibrary library(7, 9);
  const auto& video_a = library.get(site, proto_a, network);
  const auto& video_b = library.get(site, proto_b, network);

  const SimDuration end = std::max(video_a.metrics.last_visual_change,
                                   video_b.metrics.last_visual_change);
  const SimDuration step = std::max<SimDuration>(end / 18, milliseconds(20));

  std::cout << site << " on " << network_name << " — " << proto_a << " (left) vs. "
            << proto_b << " (right)\n\n";
  std::cout << "      t | " << proto_a << std::string(42 - proto_a.size(), ' ') << "| "
            << proto_b << "\n";
  for (SimDuration t{0}; t <= end + step; t += step) {
    const double a = completeness_at(video_a.vc_curve, SimTime(t));
    const double b = completeness_at(video_b.vc_curve, SimTime(t));
    std::printf("%6.0fms | %s | %s\n", to_millis(t), strip(a).c_str(), strip(b).c_str());
  }

  std::cout << "\nMetrics (typical recording):\n";
  std::printf("  %-9s SI=%7.0fms FVC=%7.0fms PLT=%7.0fms\n", proto_a.c_str(),
              video_a.metrics.si_ms(), video_a.metrics.fvc_ms(), video_a.metrics.plt_ms());
  std::printf("  %-9s SI=%7.0fms FVC=%7.0fms PLT=%7.0fms\n", proto_b.c_str(),
              video_b.metrics.si_ms(), video_b.metrics.fvc_ms(), video_b.metrics.plt_ms());

  // Ask a small panel of simulated participants the study question.
  Rng rng(123);
  int first = 0;
  int second = 0;
  int neither = 0;
  for (int i = 0; i < 100; ++i) {
    const auto participant = study::sample_participant(study::Group::kMicroworker, rng);
    const auto vote = study::ab_vote(video_a, video_b, participant, rng);
    first += vote.choice == study::AbChoice::kFirst;
    second += vote.choice == study::AbChoice::kSecond;
    neither += vote.choice == study::AbChoice::kNoDifference;
  }
  std::cout << "\n100 simulated crowd raters: " << first << "x '" << proto_a
            << " faster', " << neither << "x 'no difference', " << second << "x '"
            << proto_b << " faster'\n";
  return 0;
}
