// Exports the simulated study data as CSV files, mirroring the paper's
// public data release (https://study.netray.io): per-condition A/B votes,
// per-condition rating votes, and the technical metrics of every stimulus.
//
//   ./export_study_data [output_dir]
//
// Honours QPERC_RUNS / QPERC_SITES / QPERC_SEED like the benches.
#include <filesystem>
#include <fstream>
#include <iostream>

#include "bench/common.hpp"
#include "study/ab_study.hpp"
#include "study/rating_study.hpp"

int main(int argc, char** argv) {
  using namespace qperc;
  const std::filesystem::path out_dir = argc > 1 ? argv[1] : "study_data";
  std::filesystem::create_directories(out_dir);

  bench::CachedLibrary cached;
  cached.precompute_all();
  auto& library = cached.get();

  // Stimulus metrics.
  {
    std::ofstream out(out_dir / "videos.csv");
    out << "site,protocol,network,runs,fvc_ms,si_ms,vc85_ms,lvc_ms,plt_ms,"
           "mean_fvc_ms,mean_si_ms,mean_vc85_ms,mean_lvc_ms,mean_plt_ms,"
           "mean_retransmissions\n";
    for (const auto& site : bench::bench_sites(library)) {
      for (const auto& protocol : bench::all_protocol_names()) {
        for (const auto network : bench::all_network_kinds()) {
          const auto& video = library.get(site, protocol, network);
          out << site << ',' << protocol << ',' << net::to_string(network) << ','
              << video.runs;
          for (std::size_t m = 0; m < browser::kMetricCount; ++m) {
            out << ',' << video.metrics.metric_ms(m);
          }
          for (std::size_t m = 0; m < browser::kMetricCount; ++m) {
            out << ',' << video.mean_metrics.metric_ms(m);
          }
          out << ',' << video.mean_retransmissions << '\n';
        }
      }
    }
    std::cout << "wrote " << (out_dir / "videos.csv").string() << "\n";
  }

  // A/B study votes, per (pair, network, site).
  {
    study::AbStudyConfig config;
    config.group = study::Group::kMicroworker;
    config.seed = bench::master_seed();
    const auto result = study::run_ab_study(library, config);
    std::ofstream out(out_dir / "ab_votes.csv");
    out << "protocol_a,protocol_b,network,site,prefer_a,no_difference,prefer_b,"
           "avg_replays,avg_confidence\n";
    for (const auto& [key, cell] : result.by_site) {
      const auto& [pair_index, network, site] = key;
      const auto& [proto_a, proto_b] = study::ab_pairs()[pair_index];
      out << proto_a << ',' << proto_b << ',' << net::to_string(network) << ',' << site
          << ',' << cell.prefer_first << ',' << cell.no_difference << ','
          << cell.prefer_second << ',' << cell.avg_replays() << ','
          << (cell.total() ? cell.confidence_sum / static_cast<double>(cell.total()) : 0.0)
          << '\n';
    }
    std::cout << "wrote " << (out_dir / "ab_votes.csv").string() << " ("
              << result.by_site.size() << " conditions, funnel " << result.funnel.initial
              << "->" << result.funnel.final_count() << ")\n";
  }

  // Rating study votes, one row per vote.
  {
    study::RatingStudyConfig config;
    config.group = study::Group::kMicroworker;
    config.seed = bench::master_seed();
    const auto result = study::run_rating_study(library, config);
    std::ofstream out(out_dir / "rating_votes.csv");
    out << "site,protocol,network,context,vote\n";
    std::size_t rows = 0;
    for (const auto& [key, votes] : result.votes_by_site) {
      const auto& [site, protocol, network, context] = key;
      for (const double vote : votes) {
        out << site << ',' << protocol << ',' << net::to_string(network) << ','
            << study::to_string(context) << ',' << vote << '\n';
        ++rows;
      }
    }
    std::cout << "wrote " << (out_dir / "rating_votes.csv").string() << " (" << rows
              << " votes, funnel " << result.funnel.initial << "->"
              << result.funnel.final_count() << ")\n";
  }
  return 0;
}
