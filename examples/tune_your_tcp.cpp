// "Bring TCP up to speed": starts from stock Linux TCP and applies the
// paper's TCP+ tuning knobs one at a time (IW32, pacing, BDP buffers, no
// slow-start-after-idle), showing what each buys on a chosen network — and
// what the full tuning still cannot buy versus QUIC's 1-RTT handshake.
#include <iostream>

#include "core/protocol.hpp"
#include "core/trial.hpp"
#include "net/profile.hpp"
#include "util/table.hpp"
#include "web/website.hpp"

namespace {

double mean_si(const qperc::web::Website& site, const qperc::core::ProtocolConfig& p,
               const qperc::net::NetworkProfile& profile) {
  double sum = 0.0;
  constexpr int kRuns = 15;
  for (int seed = 1; seed <= kRuns; ++seed) {
    sum += qperc::core::run_trial(
               qperc::core::TrialSpec(site, p, profile, static_cast<std::uint64_t>(seed) * 31))
               .metrics.si_ms();
  }
  return sum / kRuns;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qperc;
  const std::string network_name = argc > 1 ? argv[1] : "LTE";
  const net::NetworkProfile* profile = &net::all_profiles()[1];  // LTE
  for (const auto& candidate : net::all_profiles()) {
    if (candidate.name == network_name) profile = &candidate;
  }

  const auto catalog = web::study_catalog(7);
  const auto& site = *std::find_if(catalog.begin(), catalog.end(),
                                   [](const auto& s) { return s.name == "gov.uk"; });

  std::cout << "Tuning TCP step by step on " << profile->name << " (site: " << site.name
            << ", mean SI over 15 seeds)\n\n";

  core::ProtocolConfig config = core::protocol_by_name("TCP");
  TextTable table({"Step", "IW", "Pacing", "Buffers", "SS-idle", "mean SI"});
  const auto add = [&](const std::string& label) {
    table.add_row({label, std::to_string(config.initial_window_segments),
                   config.pacing ? "on" : "off",
                   config.tuned_buffers ? "2xBDP" : "autotune",
                   config.slow_start_after_idle ? "yes" : "no",
                   fmt_ms(mean_si(site, config, *profile))});
  };

  add("stock Linux TCP");
  config.initial_window_segments = 32;
  add("+ IW32 (gQUIC's default)");
  config.pacing = true;
  add("+ sch_fq pacing");
  config.tuned_buffers = true;
  add("+ BDP-sized buffers");
  config.slow_start_after_idle = false;
  add("+ no slow-start-after-idle  (= TCP+)");
  table.print(std::cout);

  const double tcp_plus = mean_si(site, config, *profile);
  const double quic = mean_si(site, core::protocol_by_name("QUIC"), *profile);
  std::cout << "\nFully tuned TCP+ reaches " << fmt_ms(tcp_plus) << "; gQUIC still loads at "
            << fmt_ms(quic) << ".\nThe rest is the handshake: TCP+TLS needs two round\n"
            << "trips per origin before the request, gQUIC one (§3).\n";
  return 0;
}
