// qperc — command-line frontend for the testbed and the user studies.
//
//   qperc catalog                       list the 36 study websites
//   qperc protocols                     list protocol configurations
//   qperc networks                      list emulated networks
//   qperc trial    --site S --protocol P --network N [--seed K] [--csv]
//                  [--trace out.jsonl]
//   qperc video    --site S --protocol P --network N [--runs R] [--seed K]
//   qperc study    --kind ab|rating [--group lab|uworker|internet]
//                  [--runs R] [--sites N] [--seed K]
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "core/trial.hpp"
#include "core/video.hpp"
#include "net/profile.hpp"
#include "stats/stats.hpp"
#include "study/ab_study.hpp"
#include "study/rating_study.hpp"
#include "trace/counters.hpp"
#include "trace/jsonl_sink.hpp"
#include "util/table.hpp"
#include "web/catalog_io.hpp"
#include "web/website.hpp"

namespace qperc::cli {
namespace {

/// Minimal --flag value parser; flags may appear in any order.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) continue;
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "true";
      }
    }
  }

  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  [[nodiscard]] bool has(const std::string& key) const { return values_.contains(key); }

 private:
  std::map<std::string, std::string> values_;
};

int usage() {
  std::cerr
      << "usage: qperc <command> [flags]\n"
         "  catalog [--export FILE] [--catalog FILE] | protocols | networks\n"
         "  trial --site S --protocol P --network N [--seed K] [--csv]\n"
         "        [--catalog FILE] [--trace out.jsonl]\n"
         "  video --site S --protocol P --network N [--runs R] [--seed K]\n"
         "  study --kind ab|rating [--group lab|uworker|internet] [--runs R]\n"
         "        [--sites N] [--seed K]\n";
  return 2;
}

const net::NetworkProfile& network_by_name(const std::string& name) {
  for (const auto& profile : net::all_profiles()) {
    if (profile.name == name) return profile;
  }
  throw std::invalid_argument("unknown network '" + name + "' (DSL, LTE, DA2GC, MSS)");
}

std::vector<web::Website> resolve_catalog(const Args& args) {
  if (args.has("catalog")) return web::load_catalog(args.get("catalog", ""));
  return web::study_catalog(args.get_u64("seed", 7));
}

int cmd_catalog(const Args& args) {
  const auto catalog = resolve_catalog(args);
  if (args.has("export")) {
    web::save_catalog(args.get("export", "catalog.txt"), catalog);
    std::cout << "wrote " << args.get("export", "catalog.txt") << " (" << catalog.size()
              << " sites)\n";
    return 0;
  }
  TextTable table({"Site", "objects", "kB", "origins"});
  for (const auto& site : catalog) {
    table.add_row({site.name, std::to_string(site.object_count()),
                   std::to_string(site.total_bytes() / 1024),
                   std::to_string(site.contacted_origins())});
  }
  table.print(std::cout);
  return 0;
}

int cmd_protocols() {
  TextTable table({"Protocol", "Transport", "CC", "IW", "Pacing", "Buffers", "RTTs"});
  const auto add = [&](const core::ProtocolConfig& protocol) {
    const char* transport = protocol.transport == core::Transport::kQuic ? "gQUIC"
                            : protocol.transport == core::Transport::kTcpH1
                                ? "TCP+TLS+H1"
                                : "TCP+TLS+H2";
    table.add_row({protocol.name, transport,
                   std::string(cc::to_string(protocol.congestion_control)),
                   std::to_string(protocol.initial_window_segments),
                   protocol.pacing ? "on" : "off",
                   protocol.tuned_buffers ? "2xBDP" : "autotune",
                   protocol.transport == core::Transport::kQuic
                       ? (protocol.zero_rtt ? "0" : "1")
                       : "2"});
  };
  for (const auto& protocol : core::paper_protocols()) add(protocol);
  add(core::http1_baseline_protocol());
  table.print(std::cout);
  return 0;
}

int cmd_networks() {
  TextTable table({"Network", "Up", "Down", "minRTT", "Loss", "Queue"});
  for (const auto& profile : net::all_profiles()) {
    table.add_row({profile.name, fmt_fixed(profile.uplink.megabits(), 3) + " Mbps",
                   fmt_fixed(profile.downlink.megabits(), 3) + " Mbps",
                   fmt_ms(to_millis(profile.min_rtt)), fmt_percent(profile.loss_rate),
                   fmt_ms(to_millis(profile.queue_delay))});
  }
  table.print(std::cout);
  return 0;
}

int cmd_trial(const Args& args) {
  const auto catalog = resolve_catalog(args);
  const std::string site_name = args.get("site", "wikipedia.org");
  const web::Website* site = nullptr;
  for (const auto& candidate : catalog) {
    if (candidate.name == site_name) site = &candidate;
  }
  if (site == nullptr) {
    std::cerr << "unknown site '" << site_name << "' — see `qperc catalog`\n";
    return 2;
  }
  const auto& protocol = core::protocol_by_name(args.get("protocol", "QUIC"));
  const auto& profile = network_by_name(args.get("network", "DSL"));

  // --trace: stream qlog-style events to a JSON Lines file while also
  // folding them into the aggregate counters printed after the trial.
  struct TracingSink final : trace::TraceSink {
    explicit TracingSink(std::ostream& os) : jsonl(os) {}
    void on_event(const trace::Event& event) override {
      jsonl.on_event(event);
      counters.observe(event);
    }
    trace::JsonlSink jsonl;
    trace::TrialCounters counters;
  };
  std::ofstream trace_file;
  std::unique_ptr<TracingSink> sink;
  if (args.has("trace")) {
    const std::string path = args.get("trace", "trace.jsonl");
    if (path == "true") {  // bare `--trace`: the parser's boolean-flag value
      std::cerr << "--trace requires an output path, e.g. --trace out.jsonl\n";
      return 2;
    }
    trace_file.open(path);
    if (!trace_file) {
      std::cerr << "cannot open trace file '" << path << "'\n";
      return 2;
    }
    sink = std::make_unique<TracingSink>(trace_file);
  }

  const auto result = core::run_trial(*site, protocol, profile, args.get_u64("seed", 7),
                                      sink ? sink.get() : nullptr);

  if (sink) {
    trace_file.flush();
    const trace::TrialCounters& counters = sink->counters;
    std::cerr << "trace: wrote " << sink->jsonl.events_written() << " events to "
              << args.get("trace", "trace.jsonl") << "\n"
              << "trace: handshakes " << counters.handshakes_completed << "/"
              << counters.handshakes_started << " (first "
              << fmt_ms(to_millis(counters.first_handshake_duration)) << ")"
              << ", packets sent " << counters.packets_sent << ", retransmissions "
              << counters.retransmissions << ", timeouts " << counters.timeouts
              << ", spurious losses " << counters.spurious_losses << "\n"
              << "trace: queue drops " << counters.queue_drops << ", random-loss drops "
              << counters.random_loss_drops << ", max cwnd " << counters.max_cwnd_bytes
              << " B, max in-flight " << counters.max_bytes_in_flight << " B\n";
  }

  if (args.has("csv")) {
    std::cout << "site,protocol,network,seed,fvc_ms,si_ms,vc85_ms,lvc_ms,plt_ms,"
                 "retransmissions,connections\n"
              << site->name << ',' << protocol.name << ',' << profile.name << ','
              << args.get_u64("seed", 7) << ',' << result.metrics.fvc_ms() << ','
              << result.metrics.si_ms() << ',' << result.metrics.vc85_ms() << ','
              << result.metrics.lvc_ms() << ',' << result.metrics.plt_ms() << ','
              << result.transport.retransmissions << ',' << result.connections_opened
              << '\n';
    return 0;
  }
  TextTable table({"FVC", "SI", "VC85", "LVC", "PLT", "retx", "conns"});
  table.add_row({fmt_ms(result.metrics.fvc_ms()), fmt_ms(result.metrics.si_ms()),
                 fmt_ms(result.metrics.vc85_ms()), fmt_ms(result.metrics.lvc_ms()),
                 fmt_ms(result.metrics.plt_ms()),
                 std::to_string(result.transport.retransmissions),
                 std::to_string(result.connections_opened)});
  std::cout << site->name << " / " << protocol.name << " / " << profile.name << "\n";
  table.print(std::cout);
  return 0;
}

int cmd_video(const Args& args) {
  core::VideoLibrary library(args.get_u64("seed", 7),
                             static_cast<std::uint32_t>(args.get_u64("runs", 31)));
  const auto& profile = network_by_name(args.get("network", "DSL"));
  const auto& video = library.get(args.get("site", "wikipedia.org"),
                                  args.get("protocol", "QUIC"), profile.kind);
  std::cout << "typical recording of " << video.site << " / " << video.protocol << " / "
            << profile.name << " (" << video.runs << " trials)\n";
  TextTable table({"", "FVC", "SI", "VC85", "LVC", "PLT"});
  table.add_row({"selected video", fmt_ms(video.metrics.fvc_ms()),
                 fmt_ms(video.metrics.si_ms()), fmt_ms(video.metrics.vc85_ms()),
                 fmt_ms(video.metrics.lvc_ms()), fmt_ms(video.metrics.plt_ms())});
  table.add_row({"condition mean", fmt_ms(video.mean_metrics.fvc_ms()),
                 fmt_ms(video.mean_metrics.si_ms()), fmt_ms(video.mean_metrics.vc85_ms()),
                 fmt_ms(video.mean_metrics.lvc_ms()), fmt_ms(video.mean_metrics.plt_ms())});
  table.print(std::cout);
  std::cout << "mean retransmissions/trial: " << fmt_fixed(video.mean_retransmissions, 1)
            << ", VC curve points: " << video.vc_curve.size() << "\n";
  return 0;
}

study::Group parse_group(const std::string& name) {
  if (name == "lab") return study::Group::kLab;
  if (name == "internet") return study::Group::kInternet;
  return study::Group::kMicroworker;
}

int cmd_study(const Args& args) {
  core::VideoLibrary library(args.get_u64("seed", 7),
                             static_cast<std::uint32_t>(args.get_u64("runs", 31)));
  const auto group = parse_group(args.get("group", "uworker"));
  const std::size_t site_budget = args.get_u64("sites", 36);
  const bool lab_only = site_budget <= web::lab_study_domains().size();

  if (args.get("kind", "rating") == "ab") {
    study::AbStudyConfig config;
    config.group = group;
    config.lab_domains_only = lab_only;
    config.seed = args.get_u64("seed", 7);
    const auto result = study::run_ab_study(library, config);
    std::cout << "A/B study, " << study::to_string(group) << ": "
              << result.funnel.initial << " -> " << result.funnel.final_count()
              << " participants after filtering\n\n";
    for (std::size_t p = 0; p < study::ab_pairs().size(); ++p) {
      const auto& [a, b] = study::ab_pairs()[p];
      TextTable table({"Network", "prefer " + a, "No Diff.", "prefer " + b, "replays"});
      for (const auto& profile : net::all_profiles()) {
        const auto it = result.cells.find({p, profile.kind});
        if (it == result.cells.end()) continue;
        table.add_row({profile.name, fmt_percent(it->second.share_first()),
                       fmt_percent(it->second.share_no_difference()),
                       fmt_percent(it->second.share_second()),
                       fmt_fixed(it->second.avg_replays(), 2)});
      }
      std::cout << a << " vs " << b << "\n";
      table.print(std::cout);
      std::cout << "\n";
    }
    return 0;
  }

  study::RatingStudyConfig config;
  config.group = group;
  config.lab_domains_only = lab_only;
  config.seed = args.get_u64("seed", 7);
  const auto result = study::run_rating_study(library, config);
  std::cout << "Rating study, " << study::to_string(group) << ": "
            << result.funnel.initial << " -> " << result.funnel.final_count()
            << " participants after filtering\n\n";
  TextTable table({"Protocol", "Network", "Context", "mean vote ± CI99", "n"});
  for (const auto& [key, votes] : result.votes_by_cell) {
    const auto ci = stats::mean_confidence_interval(votes, 0.99);
    table.add_row({std::get<0>(key), std::string(net::to_string(std::get<1>(key))),
                   std::string(study::to_string(std::get<2>(key))),
                   fmt_fixed(ci.center, 1) + " ± " + fmt_fixed(ci.half_width, 1),
                   std::to_string(votes.size())});
  }
  table.print(std::cout);
  return 0;
}

}  // namespace
}  // namespace qperc::cli

int main(int argc, char** argv) {
  using namespace qperc::cli;
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args(argc, argv);
  try {
    if (command == "catalog") return cmd_catalog(args);
    if (command == "protocols") return cmd_protocols();
    if (command == "networks") return cmd_networks();
    if (command == "trial") return cmd_trial(args);
    if (command == "video") return cmd_video(args);
    if (command == "study") return cmd_study(args);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  return usage();
}
