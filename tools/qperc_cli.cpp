// qperc — command-line frontend for the testbed and the user studies.
//
//   qperc catalog                       list the 36 study websites
//   qperc protocols                     list protocol configurations
//   qperc networks                      list emulated networks
//   qperc trial    --site S --protocol P --network N [--seed K] [--csv]
//                  [--trace out.jsonl]
//   qperc video    --site S --protocol P --network N [--runs R] [--seed K]
//   qperc study    --kind ab|rating [--group lab|uworker|internet]
//                  [--runs R] [--sites N] [--seed K]
//   qperc campaign run|status|export    the full experiment grid as a
//                  durable, resumable, parallel campaign (src/runner)
//   qperc fairness --flows N --mix M    multi-flow contention cells: per-flow
//                  goodput, Jain's index, queue occupancy, QoE under load
//   qperc bench throughput              steady-state trial throughput through
//                  a reused TrialContext (trials/sec, allocations/trial)
#include <array>
#include <charconv>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "core/trial.hpp"
#include "core/trial_context.hpp"
#include "core/video.hpp"
#include "net/profile.hpp"
#include "population/checkpoint.hpp"
#include "population/population_study.hpp"
#include "runner/campaign.hpp"
#include "sim/simulator.hpp"
#include "runner/campaign_runner.hpp"
#include "runner/fairness.hpp"
#include "runner/result_store.hpp"
#include "runner/torture.hpp"
#include "stats/stats.hpp"
#include "stats/streaming.hpp"
#include "study/ab_study.hpp"
#include "study/rating_study.hpp"
#include "trace/counters.hpp"
#include "trace/jsonl_sink.hpp"
// The one TU of this binary holding the counting operator new/delete shim:
// `bench throughput` reports measured allocations/trial, not estimates.
#include "util/alloc_interpose.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "web/catalog_io.hpp"
#include "web/website.hpp"

namespace qperc::cli {
namespace {

int usage() {
  std::cerr
      << "usage: qperc <command> [flags]\n"
         "  catalog [--export FILE] [--catalog FILE] | protocols | networks\n"
         "  trial --site S --protocol P --network N [--seed K] [--csv]\n"
         "        [--catalog FILE] [--trace out.jsonl] [--max-events N]\n"
         "        [--loss P] [--uplink-mbps M] [--downlink-mbps M] [--rtt-ms T]\n"
         "        [--queue-ms T] [--reorder-rate P --reorder-min-ms T --reorder-max-ms T]\n"
         "        [--dup-rate P] [--ge-enter P --ge-exit P --ge-loss-good P --ge-loss-bad P]\n"
         "        [--outage-start-ms T --outage-ms T [--outage-interval-ms T]]\n"
         "        [--rate-schedule ms:mbps,ms:mbps,...] [--link-trace lte|wifi]\n"
         "        [--link-trace-seed K] [--policer-rate-mbps M [--policer-burst-kb N]]\n"
         "  torture [--seed K] [--grid small|full] [--max-events N] [--quiet]\n"
         "  video --site S --protocol P --network N [--runs R] [--seed K]\n"
         "  study --kind ab|rating [--group lab|uworker|internet] [--runs R]\n"
         "        [--sites N] [--seed K]\n"
         "  study run    [--kind ab|rating] [--group G] [--participants N] [--jobs J]\n"
         "               [--shard I/N] [--resume] [--out DIR] [--export FILE]\n"
         "               [--seed K] [--sites N] [--runs R] [--block-size B]\n"
         "               [--max-blocks N] [--checkpoint-every N] [--videos-work N]\n"
         "               [--videos-free N] [--videos-plane N] [--videos-ab N]\n"
         "               [--link-trace lte|wifi] [--link-trace-seed K]\n"
         "               [--policer-rate-mbps M [--policer-burst-kb N]] [--quiet]\n"
         "  study report [--kind ab|rating] [--group G] [--participants N] [--out DIR]\n"
         "               [--export FILE] [--seed K] [--sites N] [--runs R]\n"
         "               [--link-trace lte|wifi] [--link-trace-seed K]\n"
         "               [--policer-rate-mbps M [--policer-burst-kb N]]\n"
         "  campaign run    [--jobs J] [--shard I/N] [--resume] [--out DIR]\n"
         "                  [--sites N] [--runs R] [--seed K] [--protocols A,B]\n"
         "                  [--networks A,B] [--checkpoint-every N] [--max-tasks N]\n"
         "                  [--retries N] [--no-counters] [--quiet]\n"
         "  campaign status [--out DIR] [--sites N] [--runs R] [--seed K]\n"
         "                  [--protocols A,B] [--networks A,B]\n"
         "  campaign export [--out DIR] [--runs R] [--seed K]\n"
         "  fairness [--sites A,B] [--protocols A,B] [--networks A,B] [--flows N,M]\n"
         "           [--mix cubic|reno|bbr|quic|mixed,..] [--stagger-ms T,U]\n"
         "           [--runs R] [--seed K] [--burst-kb N] [--off-ms T]\n"
         "           [--link-trace lte|wifi] [--link-trace-seed K]\n"
         "           [--policer-rate-mbps M [--policer-burst-kb N]] [--jobs J]\n"
         "           [--shard I/N] [--resume] [--out DIR] [--export FILE]\n"
         "           [--max-cells N] [--retries N] [--checkpoint-every N]\n"
         "           [--report] [--quiet]\n"
         "  bench throughput [--site S] [--protocol P] [--network N] [--trials N]\n"
         "                  [--warmup N] [--seed K] [--catalog FILE]\n";
  return 2;
}

const net::NetworkProfile& network_by_name(const std::string& name) {
  for (const auto& profile : net::all_profiles()) {
    if (profile.name == name) return profile;
  }
  throw std::invalid_argument("unknown network '" + name + "' (DSL, LTE, DA2GC, MSS)");
}

std::vector<web::Website> resolve_catalog(const Args& args) {
  if (args.has("catalog")) return web::load_catalog(args.get("catalog", ""));
  return web::study_catalog(args.get_u64("seed", 7));
}

/// Applies the profile/impairment override flags shared by `trial`, then
/// validates so an out-of-range value (negative loss, zero bandwidth, ...)
/// fails here with an actionable message instead of misbehaving in the sim.
net::NetworkProfile apply_profile_overrides(net::NetworkProfile profile, const Args& args) {
  if (args.has("loss")) profile.loss_rate = args.get_double("loss", 0.0);
  if (args.has("uplink-mbps")) {
    profile.uplink = DataRate::megabits_per_second(args.get_double("uplink-mbps", 0.0));
  }
  if (args.has("downlink-mbps")) {
    profile.downlink = DataRate::megabits_per_second(args.get_double("downlink-mbps", 0.0));
  }
  if (args.has("rtt-ms")) {
    profile.min_rtt = from_seconds(args.get_double("rtt-ms", 0.0) / 1e3);
  }
  if (args.has("queue-ms")) {
    profile.queue_delay = from_seconds(args.get_double("queue-ms", 0.0) / 1e3);
  }
  net::LinkImpairments& imp = profile.impairments;
  if (args.has("reorder-rate")) imp.reorder_rate = args.get_double("reorder-rate", 0.0);
  if (args.has("reorder-min-ms")) {
    imp.reorder_delay_min = from_seconds(args.get_double("reorder-min-ms", 0.0) / 1e3);
  }
  if (args.has("reorder-max-ms")) {
    imp.reorder_delay_max = from_seconds(args.get_double("reorder-max-ms", 0.0) / 1e3);
  }
  if (args.has("dup-rate")) imp.duplicate_rate = args.get_double("dup-rate", 0.0);
  if (args.has("ge-enter")) imp.gilbert_elliott.enter_bad = args.get_double("ge-enter", 0.0);
  if (args.has("ge-exit")) imp.gilbert_elliott.exit_bad = args.get_double("ge-exit", 0.0);
  if (args.has("ge-loss-good")) {
    imp.gilbert_elliott.loss_good = args.get_double("ge-loss-good", 0.0);
  }
  if (args.has("ge-loss-bad")) {
    imp.gilbert_elliott.loss_bad = args.get_double("ge-loss-bad", 0.0);
  }
  if (args.has("outage-start-ms")) {
    imp.outage_start = SimTime{from_seconds(args.get_double("outage-start-ms", 0.0) / 1e3)};
  }
  if (args.has("outage-ms")) {
    imp.outage_duration = from_seconds(args.get_double("outage-ms", 0.0) / 1e3);
  }
  if (args.has("outage-interval-ms")) {
    imp.outage_interval = from_seconds(args.get_double("outage-interval-ms", 0.0) / 1e3);
  }
  if (args.has("policer-rate-mbps")) {
    imp.policer_rate =
        DataRate::megabits_per_second(args.get_double("policer-rate-mbps", 0.0));
    // Carrier policers are commonly provisioned with bursts in the tens of
    // kilobytes; 64 kB is the documented default, override with --policer-burst-kb.
    imp.policer_burst_bytes = args.get_u64("policer-burst-kb", 64) * 1024;
  }
  if (args.has("rate-schedule")) {
    // "ms:mbps,ms:mbps,..." — step changes of the downlink serialization rate.
    const auto parts = split_csv(args.get("rate-schedule", ""));
    if (parts.empty() || parts.size() > net::RateSchedule::kMaxSteps) {
      throw std::invalid_argument(
          "--rate-schedule expects 1.." + std::to_string(net::RateSchedule::kMaxSteps) +
          " comma-separated ms:mbps pairs");
    }
    std::array<net::RateStep, net::RateSchedule::kMaxSteps> steps{};
    for (std::size_t i = 0; i < parts.size(); ++i) {
      const auto colon = parts[i].find(':');
      if (colon == std::string::npos) {
        throw std::invalid_argument("--rate-schedule step '" + parts[i] +
                                    "' is not ms:mbps");
      }
      try {
        steps[i].at = from_seconds(std::stod(parts[i].substr(0, colon)) / 1e3);
        steps[i].rate =
            DataRate::megabits_per_second(std::stod(parts[i].substr(colon + 1)));
      } catch (const std::exception&) {
        throw std::invalid_argument("--rate-schedule step '" + parts[i] +
                                    "' is not ms:mbps");
      }
    }
    profile.downlink_schedule = net::RateSchedule::steps(steps.data(), parts.size());
  }
  if (args.has("link-trace")) {
    // Synthetic Mahimahi-style variable-rate trace modulating the downlink
    // around its base rate. (The ISSUE sketch called this `--trace`, but that
    // flag already names the JSONL event-trace output path.)
    const std::string kind = args.get("link-trace", "lte");
    const std::uint64_t trace_seed = args.get_u64("link-trace-seed", 1);
    if (kind == "lte") {
      profile.downlink_schedule = net::RateSchedule::lte_trace(profile.downlink, trace_seed);
    } else if (kind == "wifi") {
      profile.downlink_schedule =
          net::RateSchedule::wifi_trace(profile.downlink, trace_seed);
    } else {
      throw std::invalid_argument("--link-trace expects lte or wifi, got '" + kind + "'");
    }
  }
  profile.validate();
  return profile;
}

int cmd_catalog(const Args& args) {
  const auto catalog = resolve_catalog(args);
  if (args.has("export")) {
    web::save_catalog(args.get("export", "catalog.txt"), catalog);
    std::cout << "wrote " << args.get("export", "catalog.txt") << " (" << catalog.size()
              << " sites)\n";
    return 0;
  }
  TextTable table({"Site", "objects", "kB", "origins"});
  for (const auto& site : catalog) {
    table.add_row({site.name, std::to_string(site.object_count()),
                   std::to_string(site.total_bytes() / 1024),
                   std::to_string(site.contacted_origins())});
  }
  table.print(std::cout);
  return 0;
}

int cmd_protocols() {
  TextTable table({"Protocol", "Transport", "CC", "IW", "Pacing", "Buffers", "RTTs"});
  const auto add = [&](const core::ProtocolConfig& protocol) {
    const char* transport = protocol.transport == core::Transport::kQuic ? "gQUIC"
                            : protocol.transport == core::Transport::kTcpH1
                                ? "TCP+TLS+H1"
                                : "TCP+TLS+H2";
    table.add_row({protocol.name, transport,
                   std::string(cc::to_string(protocol.congestion_control)),
                   std::to_string(protocol.initial_window_segments),
                   protocol.pacing ? "on" : "off",
                   protocol.tuned_buffers ? "2xBDP" : "autotune",
                   protocol.transport == core::Transport::kQuic
                       ? (protocol.zero_rtt ? "0" : "1")
                       : "2"});
  };
  for (const auto& protocol : core::paper_protocols()) add(protocol);
  add(core::http1_baseline_protocol());
  table.print(std::cout);
  return 0;
}

int cmd_networks() {
  TextTable table({"Network", "Up", "Down", "minRTT", "Loss", "Queue"});
  for (const auto& profile : net::all_profiles()) {
    table.add_row({profile.name, fmt_fixed(profile.uplink.megabits(), 3) + " Mbps",
                   fmt_fixed(profile.downlink.megabits(), 3) + " Mbps",
                   fmt_ms(to_millis(profile.min_rtt)), fmt_percent(profile.loss_rate),
                   fmt_ms(to_millis(profile.queue_delay))});
  }
  table.print(std::cout);
  return 0;
}

int cmd_trial(const Args& args) {
  const auto catalog = resolve_catalog(args);
  const std::string site_name = args.get("site", "wikipedia.org");
  const web::Website* site = nullptr;
  for (const auto& candidate : catalog) {
    if (candidate.name == site_name) site = &candidate;
  }
  if (site == nullptr) {
    std::cerr << "unknown site '" << site_name << "' — see `qperc catalog`\n";
    return 2;
  }
  const auto& protocol = core::protocol_by_name(args.get("protocol", "QUIC"));
  const net::NetworkProfile profile =
      apply_profile_overrides(network_by_name(args.get("network", "DSL")), args);

  // --trace: stream qlog-style events to a JSON Lines file while also
  // folding them into the aggregate counters printed after the trial.
  struct TracingSink final : trace::TraceSink {
    explicit TracingSink(std::ostream& os) : jsonl(os) {}
    void on_event(const trace::Event& event) override {
      jsonl.on_event(event);
      counters.observe(event);
    }
    trace::JsonlSink jsonl;
    trace::TrialCounters counters;
  };
  std::ofstream trace_file;
  std::unique_ptr<TracingSink> sink;
  if (args.has("trace")) {
    const std::string path = args.get("trace", "trace.jsonl");
    if (path == "true") {  // bare `--trace`: the parser's boolean-flag value
      std::cerr << "--trace requires an output path, e.g. --trace out.jsonl\n";
      return 2;
    }
    trace_file.open(path);
    if (!trace_file) {
      std::cerr << "cannot open trace file '" << path << "'\n";
      return 2;
    }
    sink = std::make_unique<TracingSink>(trace_file);
  }

  const auto result = core::run_trial(
      core::TrialSpec(*site, protocol, profile, args.get_u64("seed", 7))
          .with_trace(sink ? sink.get() : nullptr)
          .with_max_events(
              args.get_u64("max-events", sim::Simulator::kDefaultEventCap)));

  if (sink) {
    trace_file.flush();
    const trace::TrialCounters& counters = sink->counters;
    std::cerr << "trace: wrote " << sink->jsonl.events_written() << " events to "
              << args.get("trace", "trace.jsonl") << "\n"
              << "trace: handshakes " << counters.handshakes_completed << "/"
              << counters.handshakes_started << " (first "
              << fmt_ms(to_millis(counters.first_handshake_duration)) << ")"
              << ", packets sent " << counters.packets_sent << ", retransmissions "
              << counters.retransmissions << ", timeouts " << counters.timeouts
              << ", spurious losses " << counters.spurious_losses << "\n"
              << "trace: queue drops " << counters.queue_drops << ", random-loss drops "
              << counters.random_loss_drops << ", max cwnd " << counters.max_cwnd_bytes
              << " B, max in-flight " << counters.max_bytes_in_flight << " B\n";
  }

  if (args.has("csv")) {
    std::cout << "site,protocol,network,seed,fvc_ms,si_ms,vc85_ms,lvc_ms,plt_ms,"
                 "retransmissions,connections\n"
              << site->name << ',' << protocol.name << ',' << profile.name << ','
              << args.get_u64("seed", 7) << ',' << result.metrics.fvc_ms() << ','
              << result.metrics.si_ms() << ',' << result.metrics.vc85_ms() << ','
              << result.metrics.lvc_ms() << ',' << result.metrics.plt_ms() << ','
              << result.transport.retransmissions << ',' << result.connections_opened
              << '\n';
    return 0;
  }
  TextTable table({"FVC", "SI", "VC85", "LVC", "PLT", "retx", "conns"});
  table.add_row({fmt_ms(result.metrics.fvc_ms()), fmt_ms(result.metrics.si_ms()),
                 fmt_ms(result.metrics.vc85_ms()), fmt_ms(result.metrics.lvc_ms()),
                 fmt_ms(result.metrics.plt_ms()),
                 std::to_string(result.transport.retransmissions),
                 std::to_string(result.connections_opened)});
  std::cout << site->name << " / " << protocol.name << " / " << profile.name << "\n";
  table.print(std::cout);
  if (!result.metrics.finished) {
    std::cout << "(load did not finish within the event/time budget; metrics are partial)\n";
  }
  return 0;
}

int cmd_video(const Args& args) {
  core::VideoLibrary library(args.get_u64("seed", 7),
                             static_cast<std::uint32_t>(args.get_u64("runs", 31)));
  const auto& profile = network_by_name(args.get("network", "DSL"));
  const auto& video = library.get(args.get("site", "wikipedia.org"),
                                  args.get("protocol", "QUIC"), profile.kind);
  std::cout << "typical recording of " << video.site << " / " << video.protocol << " / "
            << profile.name << " (" << video.runs << " trials)\n";
  TextTable table({"", "FVC", "SI", "VC85", "LVC", "PLT"});
  table.add_row({"selected video", fmt_ms(video.metrics.fvc_ms()),
                 fmt_ms(video.metrics.si_ms()), fmt_ms(video.metrics.vc85_ms()),
                 fmt_ms(video.metrics.lvc_ms()), fmt_ms(video.metrics.plt_ms())});
  table.add_row({"condition mean", fmt_ms(video.mean_metrics.fvc_ms()),
                 fmt_ms(video.mean_metrics.si_ms()), fmt_ms(video.mean_metrics.vc85_ms()),
                 fmt_ms(video.mean_metrics.lvc_ms()), fmt_ms(video.mean_metrics.plt_ms())});
  table.print(std::cout);
  std::cout << "mean retransmissions/trial: " << fmt_fixed(video.mean_retransmissions, 1)
            << ", VC curve points: " << video.vc_curve.size() << "\n";
  return 0;
}

study::Group parse_group(const std::string& name) {
  if (name == "lab") return study::Group::kLab;
  if (name == "internet") return study::Group::kInternet;
  return study::Group::kMicroworker;
}

int cmd_study(const Args& args) {
  core::VideoLibrary library(args.get_u64("seed", 7),
                             static_cast<std::uint32_t>(args.get_u64("runs", 31)));
  const auto group = parse_group(args.get("group", "uworker"));
  const std::size_t site_budget = args.get_u64("sites", 36);
  const bool lab_only = site_budget <= web::lab_study_domains().size();

  if (args.get("kind", "rating") == "ab") {
    study::AbStudyConfig config;
    config.group = group;
    config.lab_domains_only = lab_only;
    config.seed = args.get_u64("seed", 7);
    const auto result = study::run_ab_study(library, config);
    std::cout << "A/B study, " << study::to_string(group) << ": "
              << result.funnel.initial << " -> " << result.funnel.final_count()
              << " participants after filtering\n\n";
    for (std::size_t p = 0; p < study::ab_pairs().size(); ++p) {
      const auto& [a, b] = study::ab_pairs()[p];
      TextTable table({"Network", "prefer " + a, "No Diff.", "prefer " + b, "replays"});
      for (const auto& profile : net::all_profiles()) {
        const auto it = result.cells.find({p, profile.kind});
        if (it == result.cells.end()) continue;
        table.add_row({profile.name, fmt_percent(it->second.share_first()),
                       fmt_percent(it->second.share_no_difference()),
                       fmt_percent(it->second.share_second()),
                       fmt_fixed(it->second.avg_replays(), 2)});
      }
      std::cout << a << " vs " << b << "\n";
      table.print(std::cout);
      std::cout << "\n";
    }
    return 0;
  }

  study::RatingStudyConfig config;
  config.group = group;
  config.lab_domains_only = lab_only;
  config.seed = args.get_u64("seed", 7);
  const auto result = study::run_rating_study(library, config);
  std::cout << "Rating study, " << study::to_string(group) << ": "
            << result.funnel.initial << " -> " << result.funnel.final_count()
            << " participants after filtering\n\n";
  TextTable table({"Protocol", "Network", "Context", "mean vote ± CI99", "n"});
  for (const auto& [key, votes] : result.votes_by_cell) {
    const auto ci = stats::mean_confidence_interval(votes, 0.99);
    table.add_row({std::get<0>(key), std::string(net::to_string(std::get<1>(key))),
                   std::string(study::to_string(std::get<2>(key))),
                   fmt_fixed(ci.center, 1) + " ± " + fmt_fixed(ci.half_width, 1),
                   std::to_string(votes.size())});
  }
  table.print(std::cout);
  return 0;
}

/// Shared by the fairness and population-study subcommands: the grid-wide
/// variable-rate/policing overlay (--link-trace [--link-trace-seed],
/// --policer-rate-mbps [--policer-burst-kb]).
net::LinkConditions link_conditions_from_args(const Args& args) {
  net::LinkConditions conditions;
  if (args.has("link-trace")) {
    const std::string kind = args.get("link-trace", "lte");
    if (kind == "lte") {
      conditions.link_trace = net::RateSchedule::Kind::kLteTrace;
    } else if (kind == "wifi") {
      conditions.link_trace = net::RateSchedule::Kind::kWifiTrace;
    } else {
      throw std::invalid_argument("--link-trace expects lte or wifi, got '" + kind + "'");
    }
    conditions.link_trace_seed = args.get_u64("link-trace-seed", 1);
  }
  if (args.has("policer-rate-mbps")) {
    conditions.policer_rate =
        DataRate::megabits_per_second(args.get_double("policer-rate-mbps", 0.0));
    conditions.policer_burst_bytes = args.get_u64("policer-burst-kb", 64) * 1024;
  }
  return conditions;
}

/// File-name fragment for an enabled overlay ("" when none): caches and
/// checkpoints taken under different conditions land in different files
/// (their headers/fingerprints would refuse to mix regardless).
std::string link_conditions_file_tag(const net::LinkConditions& conditions) {
  if (!conditions.any()) return "";
  std::string tag;
  if (conditions.link_trace != net::RateSchedule::Kind::kNone) {
    tag += std::string("_") + net::to_string(conditions.link_trace) +
           std::to_string(conditions.link_trace_seed);
  }
  if (!conditions.policer_rate.is_zero()) {
    tag += "_pol" + std::to_string(conditions.policer_rate.bps()) + "b" +
           std::to_string(conditions.policer_burst_bytes);
  }
  return tag;
}

// --- qperc study run/report (population-scale streaming studies) ------------

population::StudySpec population_spec_from_args(const Args& args) {
  population::StudySpec spec;
  spec.kind = args.get("kind", "rating") == "ab" ? study::StudyKind::kAb
                                                 : study::StudyKind::kRating;
  spec.group = parse_group(args.get("group", "uworker"));
  spec.participants = args.get_u64("participants", 10000);
  spec.seed = args.get_u64("seed", 7);
  spec.sites = args.get_u64("sites", 36);
  spec.video_runs = static_cast<std::uint32_t>(args.get_u64("runs", 31));
  spec.videos_work = args.get_u64("videos-work", 11);
  spec.videos_free_time = args.get_u64("videos-free", 11);
  spec.videos_plane = args.get_u64("videos-plane", 5);
  spec.videos_ab = args.get_u64("videos-ab", 26);
  spec.conditions = link_conditions_from_args(args);
  spec.validate();
  return spec;
}

/// Checkpoint/export file name for one shard of a streaming study; the
/// identity-bearing fields keep different studies in one --out directory
/// from colliding, mirroring campaign's store_file_name.
std::string population_file_name(const population::StudySpec& spec, unsigned shard_index,
                                 unsigned shard_count) {
  std::string name = "population_seed" + std::to_string(spec.seed) + "_" +
                     std::string(population::kind_token(spec.kind)) + "_" +
                     std::string(study::to_string(spec.group)) + "_n" +
                     std::to_string(spec.participants) +
                     link_conditions_file_tag(spec.conditions);
  if (shard_count > 1) {
    name += "_shard" + std::to_string(shard_index) + "of" + std::to_string(shard_count);
  }
  return name + ".qps";
}

/// Blocks a shard owns under the engine's modulo distribution.
std::uint64_t population_owned_blocks(std::uint64_t participants, std::uint64_t block_size,
                                      unsigned shard_index, unsigned shard_count) {
  const std::uint64_t total = (participants + block_size - 1) / block_size;
  if (total <= shard_index) return 0;
  return (total - shard_index + shard_count - 1) / shard_count;
}

void write_population_export(const std::string& path, const population::StudySpec& spec,
                             const population::Accumulator& acc) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write export file " + path);
  population::write_report(out, spec, acc);
  out.flush();
  if (!out) throw std::runtime_error("failed writing export file " + path);
}

/// Human-readable summary: funnel, per-cell means with CI99, and — the
/// scaling payoff — the QUIC-vs-TCP effect with the minimum detectable
/// rating gap at the paper's lab size and at crowd/population scale.
void print_population_summary(const population::StudySpec& spec,
                              const population::Accumulator& acc) {
  std::cout << (spec.kind == study::StudyKind::kAb ? "A/B" : "Rating")
            << " study (streaming), " << study::to_string(spec.group) << ": "
            << acc.participants << " -> " << acc.survivors
            << " participants after filtering, " << acc.votes << " votes\n\n";

  if (spec.kind == study::StudyKind::kRating) {
    TextTable table({"Protocol", "Network", "Context", "mean vote ± CI99", "n"});
    for (const auto& cell : acc.rating_cells) {
      const auto ci = stats::mean_confidence_interval(cell.votes, 0.99);
      table.add_row({cell.protocol, std::string(net::to_string(cell.network)),
                     std::string(study::to_string(cell.context)),
                     fmt_fixed(ci.center, 2) + " ± " + fmt_fixed(ci.half_width, 2),
                     std::to_string(cell.votes.count())});
    }
    table.print(std::cout);

    std::cout << "\nQUIC vs TCP rating effect (Welch t; MDE at alpha=0.05, power=0.8)\n";
    TextTable effects({"Context", "Network", "diff", "p", "MDE n=35", "MDE n=10k",
                       "MDE n=10M"});
    for (const auto& quic : acc.rating_cells) {
      if (quic.protocol != "QUIC") continue;
      for (const auto& tcp : acc.rating_cells) {
        if (tcp.protocol != "TCP" || tcp.network != quic.network ||
            tcp.context != quic.context) {
          continue;
        }
        const auto test = stats::welch_t_test(quic.votes, tcp.votes);
        const auto mde = [&](std::uint64_t n) {
          return fmt_fixed(
              stats::min_detectable_effect(quic.votes.sample_variance(), n,
                                           tcp.votes.sample_variance(), n, 0.05, 0.8),
              3);
        };
        effects.add_row({std::string(study::to_string(quic.context)),
                         std::string(net::to_string(quic.network)),
                         fmt_fixed(test.difference, 3), fmt_fixed(test.p_value, 4),
                         mde(35), mde(10000), mde(10000000)});
      }
    }
    effects.print(std::cout);
    return;
  }

  for (std::size_t p = 0; p < study::ab_pairs().size(); ++p) {
    const auto& [a, b] = study::ab_pairs()[p];
    TextTable table({"Network", "prefer " + a, "No Diff.", "prefer " + b, "n"});
    for (const auto& cell : acc.ab_cells) {
      if (cell.pair_index != p || cell.total() == 0) continue;
      const auto total = static_cast<double>(cell.total());
      table.add_row({std::string(net::to_string(cell.network)),
                     fmt_percent(static_cast<double>(cell.prefer_first) / total),
                     fmt_percent(static_cast<double>(cell.no_difference) / total),
                     fmt_percent(static_cast<double>(cell.prefer_second) / total),
                     std::to_string(cell.total())});
    }
    std::cout << a << " vs " << b << "\n";
    table.print(std::cout);
    std::cout << "\n";
  }
}

int cmd_study_run(const Args& args) {
  const auto spec = population_spec_from_args(args);

  population::RunOptions options;
  options.jobs = static_cast<unsigned>(args.get_u64("jobs", 0));
  options.block_size = args.get_u64("block-size", 8192);
  options.max_blocks = args.get_u64("max-blocks", 0);
  options.checkpoint_every_blocks = args.get_u64("checkpoint-every", 64);
  options.resume = args.has("resume");
  apply_shard_flag(args, options.shard_index, options.shard_count);
  const std::string out_dir = args.get("out", "out/study");
  std::filesystem::create_directories(out_dir);
  options.checkpoint_path =
      out_dir + "/" + population_file_name(spec, options.shard_index, options.shard_count);

  if (!args.has("quiet")) {
    options.on_progress = [](const population::Progress& progress) {
      std::cerr << "\rstudy: " << progress.participants_done << "/"
                << progress.participants_total << " participants ("
                << progress.resumed_participants << " resumed), "
                << fmt_fixed(progress.participants_per_second, 0) << "/s, ETA "
                << fmt_fixed(progress.eta_seconds, 0) << " s   " << std::flush;
    };
  }

  core::VideoLibrary library(spec.seed, spec.video_runs, spec.conditions);
  // Stimulus production dominates cold-start cost (the whole grid is
  // simulated once); persist the condition cache so reruns, resumes, and
  // sibling shards pay it only once per (seed, runs, link conditions).
  const std::string cache_path = out_dir + "/videos_seed" + std::to_string(spec.seed) +
                                 "_runs" + std::to_string(spec.video_runs) +
                                 link_conditions_file_tag(spec.conditions) + ".qvc";
  if (library.load_cache(cache_path)) {
    std::cerr << "study: reusing " << library.cached_conditions()
              << " cached condition videos from " << cache_path << "\n";
  }
  const std::size_t cached_before = library.cached_conditions();
  const auto report = population::run_streaming_study(library, spec, options);
  if (options.on_progress) std::cerr << "\n";
  if (library.cached_conditions() != cached_before) library.save_cache(cache_path);

  std::cerr << "study: " << report.blocks_done << "/" << report.owned_blocks
            << " blocks (" << report.resumed_blocks << " resumed), "
            << report.accumulator.participants << " participants, "
            << report.accumulator.votes << " votes in "
            << fmt_fixed(report.elapsed_seconds, 1) << " s\n";
  std::cerr << "study: checkpoint in " << options.checkpoint_path << "\n";
  if (!report.complete()) {
    std::cerr << "study: shard incomplete — continue with --resume\n";
    return 0;
  }
  if (args.has("export")) {
    const std::string path = args.get("export", "study_report.txt");
    write_population_export(path, spec, report.accumulator);
    std::cerr << "study: report exported to " << path << "\n";
  }
  if (options.shard_count == 1) {
    print_population_summary(spec, report.accumulator);
  } else {
    std::cerr << "study: shard " << options.shard_index << "/" << options.shard_count
              << " done — merge with `qperc study report`\n";
  }
  return 0;
}

int cmd_study_report(const Args& args) {
  const auto spec = population_spec_from_args(args);
  const std::string out_dir = args.get("out", "out/study");
  const auto layout = population::make_accumulator(spec.kind);

  // Candidate shard files share the identity prefix (any shard geometry).
  std::string prefix = population_file_name(spec, 0, 1);
  prefix.resize(prefix.size() - 4);  // strip ".qps"
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(out_dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) == 0 && name.ends_with(".qps")) {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::cerr << "study: no checkpoints matching " << out_dir << "/" << prefix
              << "*.qps — run `qperc study run` first\n";
    return 1;
  }

  auto merged = population::make_accumulator(spec.kind);
  std::vector<bool> shard_seen;
  unsigned shard_count = 0;
  bool all_complete = true;
  for (const auto& file : files) {
    const auto shard = population::read_shard(file, layout);
    if (!shard || shard->fingerprint != spec.fingerprint()) {
      std::cerr << "study: skipping unreadable or mismatched checkpoint " << file << "\n";
      continue;
    }
    if (shard_count == 0) {
      shard_count = shard->shard_count;
      shard_seen.assign(shard_count, false);
    }
    if (shard->shard_count != shard_count) {
      std::cerr << "study: " << file << " uses a different shard split ("
                << shard->shard_count << " vs " << shard_count << ") — refusing to mix\n";
      return 1;
    }
    shard_seen[shard->shard_index] = true;
    const std::uint64_t owned = population_owned_blocks(
        spec.participants, shard->block_size, shard->shard_index, shard->shard_count);
    if (shard->blocks_done < owned) {
      std::cerr << "study: shard " << shard->shard_index << "/" << shard_count
                << " incomplete (" << shard->blocks_done << "/" << owned
                << " blocks) in " << file << "\n";
      all_complete = false;
    }
    merged.merge(shard->accumulator);
  }
  if (shard_count == 0) {
    std::cerr << "study: no usable checkpoints for this spec in " << out_dir << "\n";
    return 1;
  }
  for (unsigned i = 0; i < shard_count; ++i) {
    if (!shard_seen[i]) {
      std::cerr << "study: shard " << i << "/" << shard_count << " missing from "
                << out_dir << "\n";
      all_complete = false;
    }
  }
  if (!all_complete) {
    std::cerr << "study: incomplete — finish the missing shards before reporting\n";
    return 1;
  }

  if (args.has("export")) {
    const std::string path = args.get("export", "study_report.txt");
    write_population_export(path, spec, merged);
    std::cerr << "study: report exported to " << path << "\n";
  }
  print_population_summary(spec, merged);
  return 0;
}

// --- qperc campaign ---------------------------------------------------------

/// Builds the grid spec shared by campaign run/status/export: the default
/// is the full paper grid (all sites x 5 protocols x 4 networks).
runner::CampaignSpec spec_from_args(const Args& args) {
  runner::CampaignSpec spec;
  spec.seed = args.get_u64("seed", 7);
  spec.runs = static_cast<std::uint32_t>(args.get_u64("runs", 31));

  const std::size_t site_budget = args.get_u64("sites", 36);
  for (const auto& site : web::study_catalog(spec.seed)) {
    if (spec.sites.size() >= site_budget) break;
    spec.sites.push_back(site.name);
  }

  if (args.has("protocols")) {
    for (const auto& name : split_csv(args.get("protocols", ""))) {
      spec.protocols.push_back(core::protocol_by_name(name).name);  // validates
    }
  } else {
    for (const auto& protocol : core::paper_protocols()) {
      spec.protocols.push_back(protocol.name);
    }
  }

  if (args.has("networks")) {
    for (const auto& name : split_csv(args.get("networks", ""))) {
      spec.networks.push_back(network_by_name(name).kind);
    }
  } else {
    for (const auto& profile : net::all_profiles()) spec.networks.push_back(profile.kind);
  }

  apply_shard_flag(args, spec.shard_index, spec.shard_count);
  spec.validate();
  return spec;
}

std::string store_file_name(const runner::CampaignSpec& spec) {
  std::string name =
      "campaign_seed" + std::to_string(spec.seed) + "_runs" + std::to_string(spec.runs);
  if (spec.shard_count > 1) {
    name += "_shard" + std::to_string(spec.shard_index) + "of" +
            std::to_string(spec.shard_count);
  }
  return name + ".qcr";
}

/// All checkpoint files in `out_dir` for this (seed, runs) pair — the
/// unsharded store plus any shard stores, so status/export see the merged
/// progress of a multi-process fan-out.
std::vector<std::string> store_files(const std::string& out_dir,
                                     const runner::CampaignSpec& spec) {
  const std::string prefix =
      "campaign_seed" + std::to_string(spec.seed) + "_runs" + std::to_string(spec.runs);
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(out_dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) == 0 && name.ends_with(".qcr")) {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::map<runner::ResultStore::Key, core::Video> merged_results(
    const std::string& out_dir, const runner::CampaignSpec& spec) {
  std::map<runner::ResultStore::Key, core::Video> merged;
  for (const auto& file : store_files(out_dir, spec)) {
    runner::ResultStore store(file, spec.seed, spec.runs);
    if (!store.load()) {
      std::cerr << "campaign: skipping unreadable or mismatched checkpoint " << file
                << "\n";
      continue;
    }
    store.for_each([&](const core::Video& video) {
      merged.insert_or_assign(
          runner::ResultStore::Key{video.site, video.protocol,
                                   static_cast<int>(video.network)},
          video);
    });
  }
  return merged;
}

int cmd_campaign_run(const Args& args) {
  const auto spec = spec_from_args(args);
  const std::string out_dir = args.get("out", "out/campaign");
  std::filesystem::create_directories(out_dir);

  runner::ResultStore store(out_dir + "/" + store_file_name(spec), spec.seed, spec.runs,
                            args.get_u64("checkpoint-every", 25));
  if (args.has("resume")) {
    if (store.load()) {
      std::cerr << "campaign: resuming — " << store.size()
                << " conditions already checkpointed in " << store.path() << "\n";
    } else {
      std::cerr << "campaign: no usable checkpoint at " << store.path()
                << ", starting fresh\n";
    }
  }

  runner::CampaignOptions options;
  options.jobs = static_cast<unsigned>(args.get_u64("jobs", 0));
  options.max_attempts = static_cast<unsigned>(args.get_u64("retries", 1)) + 1;
  options.max_tasks = args.get_u64("max-tasks", 0);
  options.collect_counters = !args.has("no-counters");
  if (!args.has("quiet")) {
    options.on_progress = [](const runner::CampaignProgress& progress) {
      std::cerr << "\rcampaign: " << progress.completed << "/" << progress.pending
                << " conditions (" << progress.skipped << " resumed), "
                << fmt_fixed(progress.tasks_per_second, 2) << "/s, ETA "
                << fmt_fixed(progress.eta_seconds, 0) << " s, packets "
                << progress.counters.packets_sent << ", retx "
                << progress.counters.retransmissions << "   " << std::flush;
    };
  }

  const auto report = runner::run_campaign(spec, store, options);
  if (options.on_progress) std::cerr << "\n";

  std::cerr << "campaign: " << report.total << " conditions in shard (grid "
            << spec.grid_size() << "), " << report.skipped << " resumed, "
            << report.executed << " executed, " << report.failures.size() << " failed in "
            << fmt_fixed(report.elapsed_seconds, 1) << " s\n";
  if (options.collect_counters) {
    std::cerr << "campaign: totals — packets sent " << report.counters.packets_sent
              << ", retransmissions " << report.counters.retransmissions << ", timeouts "
              << report.counters.timeouts << ", handshakes "
              << report.counters.handshakes_completed << ", queue drops "
              << report.counters.queue_drops << "\n";
  }
  for (const auto& failure : report.failures) {
    std::cerr << "campaign: FAILED " << failure.task.site << "/" << failure.task.protocol
              << "/" << net::to_string(failure.task.network) << " after "
              << failure.attempts << " attempt(s): " << failure.message << "\n";
  }
  std::cerr << "campaign: results in " << store.path() << "\n";
  return report.failures.empty() ? 0 : 1;
}

int cmd_campaign_status(const Args& args) {
  const auto spec = spec_from_args(args);
  const std::string out_dir = args.get("out", "out/campaign");
  const auto files = store_files(out_dir, spec);
  const auto merged = merged_results(out_dir, spec);

  std::cout << "campaign store: " << out_dir << " (" << files.size()
            << " checkpoint file(s), seed " << spec.seed << ", runs " << spec.runs
            << ")\n";
  std::cout << "completed: " << merged.size() << " / " << spec.grid_size()
            << " conditions\n";

  TextTable table({"Network", "completed", "of"});
  for (const auto kind : spec.networks) {
    std::size_t done = 0;
    for (const auto& [key, video] : merged) {
      if (std::get<2>(key) == static_cast<int>(kind)) ++done;
    }
    table.add_row({std::string(net::to_string(kind)), std::to_string(done),
                   std::to_string(spec.sites.size() * spec.protocols.size())});
  }
  table.print(std::cout);
  return 0;
}

int cmd_campaign_export(const Args& args) {
  const auto spec = spec_from_args(args);
  const auto merged = merged_results(args.get("out", "out/campaign"), spec);

  std::cout << "site,protocol,network,runs,fvc_ms,si_ms,vc85_ms,lvc_ms,plt_ms,"
               "mean_fvc_ms,mean_si_ms,mean_vc85_ms,mean_lvc_ms,mean_plt_ms,"
               "mean_retransmissions,vc_points\n";
  std::cout.precision(17);
  for (const auto& [key, video] : merged) {
    std::cout << video.site << ',' << video.protocol << ','
              << net::to_string(video.network) << ',' << video.runs << ','
              << video.metrics.fvc_ms() << ',' << video.metrics.si_ms() << ','
              << video.metrics.vc85_ms() << ',' << video.metrics.lvc_ms() << ','
              << video.metrics.plt_ms() << ',' << video.mean_metrics.fvc_ms() << ','
              << video.mean_metrics.si_ms() << ',' << video.mean_metrics.vc85_ms() << ','
              << video.mean_metrics.lvc_ms() << ',' << video.mean_metrics.plt_ms() << ','
              << video.mean_retransmissions << ',' << video.vc_curve.size() << '\n';
  }
  return 0;
}

// --- qperc fairness ---------------------------------------------------------

std::uint32_t parse_u32_field(const std::string& text, const char* flag) {
  std::uint32_t value = 0;
  const auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || end != text.data() + text.size()) {
    throw std::invalid_argument(std::string("--") + flag +
                                " expects non-negative integers, got '" + text + "'");
  }
  return value;
}

double parse_double_field(const std::string& text, const char* flag) {
  double value = 0.0;
  const auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || end != text.data() + text.size()) {
    throw std::invalid_argument(std::string("--") + flag + " expects numbers, got '" +
                                text + "'");
  }
  return value;
}

/// Builds the fairness grid spec shared by run/report/export. The default is
/// one cell: the first catalog site, QUIC over DSL, 16 cubic cross flows.
runner::FairnessSpec fairness_spec_from_args(const Args& args) {
  runner::FairnessSpec spec;
  spec.seed = args.get_u64("seed", 7);
  spec.runs = static_cast<std::uint32_t>(args.get_u64("runs", 5));

  const auto catalog = web::study_catalog(spec.seed);
  if (args.has("sites")) {
    for (const auto& name : split_csv(args.get("sites", ""))) {
      bool known = false;
      for (const auto& site : catalog) known = known || site.name == name;
      if (!known) {
        throw std::invalid_argument("unknown site '" + name + "' — see `qperc catalog`");
      }
      spec.sites.push_back(name);
    }
  } else {
    spec.sites.push_back(catalog.front().name);
  }

  if (args.has("protocols")) {
    for (const auto& name : split_csv(args.get("protocols", ""))) {
      spec.protocols.push_back(core::protocol_by_name(name).name);  // validates
    }
  } else {
    spec.protocols.emplace_back("QUIC");
  }

  if (args.has("networks")) {
    for (const auto& name : split_csv(args.get("networks", ""))) {
      spec.networks.push_back(network_by_name(name).kind);
    }
  } else {
    spec.networks.push_back(net::NetworkKind::kDsl);
  }

  for (const auto& text : split_csv(args.get("flows", "16"))) {
    spec.flow_counts.push_back(parse_u32_field(text, "flows"));
  }
  for (const auto& text : split_csv(args.get("mix", "cubic"))) {
    spec.mixes.push_back(net::parse_cross_mix(text));
  }
  for (const auto& text : split_csv(args.get("stagger-ms", "0"))) {
    spec.staggers.push_back(from_seconds(parse_double_field(text, "stagger-ms") / 1e3));
  }
  spec.burst_bytes = args.get_u64("burst-kb", 0) * 1024;
  spec.off_time = from_seconds(args.get_double("off-ms", 0.0) / 1e3);
  const net::LinkConditions conditions = link_conditions_from_args(args);
  spec.link_trace = conditions.link_trace;
  spec.link_trace_seed = conditions.link_trace_seed;
  spec.policer_rate = conditions.policer_rate;
  spec.policer_burst_bytes = conditions.policer_burst_bytes;
  apply_shard_flag(args, spec.shard_index, spec.shard_count);
  spec.validate();
  return spec;
}

std::string fairness_file_name(const runner::FairnessSpec& spec) {
  std::string name =
      "fairness_seed" + std::to_string(spec.seed) + "_runs" + std::to_string(spec.runs);
  if (spec.shard_count > 1) {
    name += "_shard" + std::to_string(spec.shard_index) + "of" +
            std::to_string(spec.shard_count);
  }
  return name + ".qfr";
}

/// All fairness checkpoints in `out_dir` for this (seed, runs) — the
/// unsharded store plus shard stores; incompatible axes are filtered out by
/// the fingerprint check inside absorb().
std::vector<std::string> fairness_files(const std::string& out_dir,
                                        const runner::FairnessSpec& spec) {
  const std::string prefix =
      "fairness_seed" + std::to_string(spec.seed) + "_runs" + std::to_string(spec.runs);
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(out_dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) == 0 && name.ends_with(".qfr")) {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// Writes the merged cells as canonical record lines (key-sorted, fixed field
/// order, max_digits10 doubles) — byte-identical for identical grids
/// regardless of --jobs, shard split, or resume history.
void write_fairness_export(const std::string& path, const runner::FairnessStore& store) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write export file " + path);
  store.for_each(
      [&out](const runner::FairnessCell& cell) { runner::write_fairness_record(out, cell); });
  out.flush();
  if (!out) throw std::runtime_error("failed writing export file " + path);
}

void print_fairness_summary(const runner::FairnessStore& store) {
  TextTable table({"Site", "Protocol", "Network", "flows", "mix", "stagger", "Jain",
                   "queue peak", "drops", "PLT", "SI", "page retx"});
  store.for_each([&table](const runner::FairnessCell& cell) {
    table.add_row({cell.site, cell.protocol, std::string(net::to_string(cell.network)),
                   std::to_string(cell.flows), std::string(net::to_string(cell.mix)),
                   fmt_ms(to_millis(cell.stagger)), fmt_fixed(cell.jain_index, 3),
                   fmt_percent(cell.mean_queue_peak_frac),
                   fmt_fixed(cell.mean_queue_drops, 1), fmt_ms(cell.mean_plt_ms),
                   fmt_ms(cell.mean_si_ms), fmt_fixed(cell.mean_page_retransmissions, 1)});
  });
  table.print(std::cout);

  // Per-flow goodput detail when the grid is one contended cell.
  if (store.size() == 1) {
    store.for_each([](const runner::FairnessCell& cell) {
      if (cell.flows == 0) return;
      std::cout << "\nper-flow goodput (" << cell.flows << " cross flows, mean of "
                << cell.runs << " runs)\n";
      TextTable flows({"flow", "goodput"});
      for (std::size_t i = 0; i < cell.flow_goodput_bps.size(); ++i) {
        flows.add_row({std::to_string(i),
                       fmt_fixed(cell.flow_goodput_bps[i] / 1e6, 3) + " Mbps"});
      }
      flows.print(std::cout);
    });
  }
}

int cmd_fairness(const Args& args) {
  const auto spec = fairness_spec_from_args(args);
  const std::string out_dir = args.get("out", "out/fairness");
  std::filesystem::create_directories(out_dir);

  // --report: merge every compatible checkpoint in --out and print/export
  // without running anything (the multi-shard rendezvous).
  if (args.has("report")) {
    runner::FairnessStore merged(out_dir + "/.fairness_merge.tmp", spec.seed, spec.runs,
                                 spec.fingerprint());
    std::size_t absorbed = 0;
    for (const auto& file : fairness_files(out_dir, spec)) {
      if (merged.absorb(file)) {
        ++absorbed;
      } else {
        std::cerr << "fairness: skipping unreadable or mismatched checkpoint " << file
                  << "\n";
      }
    }
    if (absorbed == 0) {
      std::cerr << "fairness: no usable checkpoints in " << out_dir
                << " — run `qperc fairness` first\n";
      return 1;
    }
    std::cerr << "fairness: merged " << merged.size() << "/" << spec.grid_size()
              << " cells from " << absorbed << " checkpoint(s)\n";
    if (args.has("export")) {
      const std::string path = args.get("export", "fairness.txt");
      write_fairness_export(path, merged);
      std::cerr << "fairness: exported to " << path << "\n";
    }
    print_fairness_summary(merged);
    return merged.size() == spec.grid_size() ? 0 : 1;
  }

  runner::FairnessStore store(out_dir + "/" + fairness_file_name(spec), spec.seed,
                              spec.runs, spec.fingerprint(),
                              args.get_u64("checkpoint-every", 8));
  if (args.has("resume")) {
    if (store.load()) {
      std::cerr << "fairness: resuming — " << store.size()
                << " cells already checkpointed in " << store.path() << "\n";
    } else {
      std::cerr << "fairness: no usable checkpoint at " << store.path()
                << ", starting fresh\n";
    }
  }

  runner::FairnessOptions options;
  options.jobs = static_cast<unsigned>(args.get_u64("jobs", 0));
  options.max_attempts = static_cast<unsigned>(args.get_u64("retries", 1)) + 1;
  options.max_tasks = args.get_u64("max-cells", 0);
  if (!args.has("quiet")) {
    options.on_progress = [](const runner::FairnessProgress& progress) {
      std::cerr << "\rfairness: " << progress.completed << "/" << progress.pending
                << " cells (" << progress.skipped << " resumed), ETA "
                << fmt_fixed(progress.eta_seconds, 0) << " s   " << std::flush;
    };
  }

  const auto report = runner::run_fairness(spec, store, options);
  if (options.on_progress) std::cerr << "\n";

  std::cerr << "fairness: " << report.total << " cells in shard (grid "
            << spec.grid_size() << "), " << report.skipped << " resumed, "
            << report.executed << " executed, " << report.failures.size() << " failed in "
            << fmt_fixed(report.elapsed_seconds, 1) << " s\n";
  for (const auto& failure : report.failures) {
    std::cerr << "fairness: FAILED " << failure.task.site << "/" << failure.task.protocol
              << "/" << net::to_string(failure.task.network) << "/"
              << failure.task.flows << "x" << net::to_string(failure.task.mix)
              << " after " << failure.attempts << " attempt(s): " << failure.message
              << "\n";
  }
  std::cerr << "fairness: results in " << store.path() << "\n";
  if (!report.failures.empty()) return 1;

  if (spec.shard_count > 1) {
    std::cerr << "fairness: shard " << spec.shard_index << "/" << spec.shard_count
              << " done — merge with `qperc fairness --report`\n";
    return 0;
  }
  if (args.has("export")) {
    const std::string path = args.get("export", "fairness.txt");
    write_fairness_export(path, store);
    std::cerr << "fairness: exported to " << path << "\n";
  }
  if (store.size() == spec.grid_size()) print_fairness_summary(store);
  return 0;
}

int cmd_torture(const Args& args) {
  runner::TortureOptions options;
  options.seed = args.get_u64("seed", 1);
  options.grid = runner::parse_torture_grid(args.get("grid", "small"));
  options.max_events_per_trial = args.get_u64("max-events", options.max_events_per_trial);
  const auto report =
      runner::run_torture(options, args.has("quiet") ? nullptr : &std::cerr);
  std::cout << "torture: " << report.trials << " trials, " << report.check_violations
            << " CHECK violations, " << report.hung_trials << " hung ("
            << report.deadlocks << " deadlocked), " << report.conservation_failures
            << " conservation failures, " << report.exceptions << " exceptions, "
            << report.incomplete_pages << " incomplete pages (time cap, legal)\n";
  for (const auto& failure : report.failures) std::cout << "  " << failure << "\n";
  std::cout << (report.ok() ? "torture: OK\n" : "torture: FAILED\n");
  return report.ok() ? 0 : 1;
}

/// Steady-state page-load throughput: runs one (site, protocol, network)
/// condition back to back through a reused TrialContext and reports
/// trials/sec, microseconds/trial, and heap allocations/trial — the same
/// numbers BENCH_micro.json ratchets, but on any condition and without
/// google-benchmark (see docs/PERFORMANCE.md "Measuring throughput").
int cmd_bench_throughput(const Args& args) {
  const auto catalog = resolve_catalog(args);
  const std::string site_name = args.get("site", "apache.org");
  const web::Website* site = nullptr;
  for (const auto& candidate : catalog) {
    if (candidate.name == site_name) site = &candidate;
  }
  if (site == nullptr) {
    std::cerr << "unknown site '" << site_name << "' — see `qperc catalog`\n";
    return 2;
  }
  const auto& protocol = core::protocol_by_name(args.get("protocol", "QUIC"));
  const net::NetworkProfile& profile = network_by_name(args.get("network", "DSL"));
  const std::uint64_t trials = args.get_u64("trials", 2000);
  const std::uint64_t warmup = args.get_u64("warmup", 3);
  if (trials == 0) {
    std::cerr << "--trials must be at least 1\n";
    return 2;
  }
  std::uint64_t seed = args.get_u64("seed", 1);

  core::TrialContext context;
  // Warm-up trials grow the arena blocks and container capacities to their
  // high-water marks so the timed region measures the steady state.
  for (std::uint64_t i = 0; i < warmup; ++i) {
    static_cast<void>(context.run(core::TrialSpec(*site, protocol, profile, seed++)));
  }

  const std::uint64_t allocs_before = heap_allocations();
  double plt_sum_ms = 0.0;
  std::uint64_t events = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < trials; ++i) {
    const auto result = context.run(core::TrialSpec(*site, protocol, profile, seed++));
    plt_sum_ms += result.metrics.plt_ms();
    events += context.simulator().events_processed();
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double total_ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
  const double dt = static_cast<double>(trials);
  const std::uint64_t allocs = heap_allocations() - allocs_before;

  std::cout << "bench throughput: " << site->name << " / " << protocol.name << " / "
            << profile.name << " (" << trials << " trials, " << warmup << " warm-up)\n";
  TextTable table({"trials/sec", "us/trial", "allocs/trial", "events/trial", "mean PLT"});
  table.add_row({fmt_fixed(dt / (total_ns * 1e-9), 1), fmt_fixed(total_ns / dt / 1e3, 1),
                 fmt_fixed(static_cast<double>(allocs) / dt, 2),
                 fmt_fixed(static_cast<double>(events) / dt, 1),
                 fmt_ms(plt_sum_ms / dt)});
  table.print(std::cout);
  std::cout << "arena bytes reserved: " << context.arena_bytes_reserved() << "\n";
  return 0;
}

int cmd_bench(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string sub = argv[2];
  if (sub == "throughput") {
    return cmd_bench_throughput(
        Args(argc, argv, 3, "bench throughput",
             {"site", "protocol", "network", "trials", "warmup", "seed", "catalog"}));
  }
  std::cerr << "unknown bench subcommand '" << sub << "' (throughput)\n";
  return usage();
}

int cmd_campaign(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string sub = argv[2];
  if (sub == "run") {
    return cmd_campaign_run(Args(argc, argv, 3, "campaign run",
                                 {"jobs", "shard", "resume", "out", "sites", "runs",
                                  "seed", "protocols", "networks", "checkpoint-every",
                                  "max-tasks", "retries", "no-counters", "quiet"}));
  }
  if (sub == "status") {
    return cmd_campaign_status(Args(argc, argv, 3, "campaign status",
                                    {"out", "sites", "runs", "seed", "protocols",
                                     "networks", "shard"}));
  }
  if (sub == "export") {
    return cmd_campaign_export(Args(argc, argv, 3, "campaign export",
                                    {"out", "sites", "runs", "seed", "protocols",
                                     "networks", "shard"}));
  }
  std::cerr << "unknown campaign subcommand '" << sub << "' (run|status|export)\n";
  return usage();
}

}  // namespace
}  // namespace qperc::cli

int main(int argc, char** argv) {
  using namespace qperc::cli;
  using qperc::Args;
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "catalog") {
      return cmd_catalog(Args(argc, argv, 2, "catalog", {"export", "catalog", "seed"}));
    }
    if (command == "protocols") {
      static_cast<void>(Args(argc, argv, 2, "protocols", {}));
      return cmd_protocols();
    }
    if (command == "networks") {
      static_cast<void>(Args(argc, argv, 2, "networks", {}));
      return cmd_networks();
    }
    if (command == "trial") {
      return cmd_trial(Args(argc, argv, 2, "trial",
                            {"site", "protocol", "network", "seed", "csv", "catalog",
                             "trace", "max-events", "loss", "uplink-mbps",
                             "downlink-mbps", "rtt-ms", "queue-ms", "reorder-rate",
                             "reorder-min-ms", "reorder-max-ms", "dup-rate", "ge-enter",
                             "ge-exit", "ge-loss-good", "ge-loss-bad", "outage-start-ms",
                             "outage-ms", "outage-interval-ms", "rate-schedule",
                             "link-trace", "link-trace-seed", "policer-rate-mbps",
                             "policer-burst-kb"}));
    }
    if (command == "torture") {
      return cmd_torture(
          Args(argc, argv, 2, "torture", {"seed", "grid", "max-events", "quiet"}));
    }
    if (command == "video") {
      return cmd_video(
          Args(argc, argv, 2, "video", {"site", "protocol", "network", "runs", "seed"}));
    }
    if (command == "study") {
      if (argc >= 3 && std::string_view(argv[2]) == "run") {
        return cmd_study_run(Args(
            argc, argv, 3, "study run",
            {"kind", "group", "participants", "seed", "sites", "runs", "videos-work",
             "videos-free", "videos-plane", "videos-ab", "jobs", "shard", "block-size",
             "max-blocks", "checkpoint-every", "resume", "out", "export", "quiet",
             "link-trace", "link-trace-seed", "policer-rate-mbps", "policer-burst-kb"}));
      }
      if (argc >= 3 && std::string_view(argv[2]) == "report") {
        return cmd_study_report(
            Args(argc, argv, 3, "study report",
                 {"kind", "group", "participants", "seed", "sites", "runs", "videos-work",
                  "videos-free", "videos-plane", "videos-ab", "out", "export",
                  "link-trace", "link-trace-seed", "policer-rate-mbps",
                  "policer-burst-kb"}));
      }
      return cmd_study(
          Args(argc, argv, 2, "study", {"kind", "group", "runs", "sites", "seed"}));
    }
    if (command == "campaign") return cmd_campaign(argc, argv);
    if (command == "fairness") {
      return cmd_fairness(
          Args(argc, argv, 2, "fairness",
               {"sites", "protocols", "networks", "flows", "mix", "stagger-ms", "runs",
                "seed", "burst-kb", "off-ms", "link-trace", "link-trace-seed",
                "policer-rate-mbps", "policer-burst-kb", "jobs", "shard", "resume",
                "out", "export", "max-cells", "retries", "checkpoint-every", "report",
                "quiet"}));
    }
    if (command == "bench") return cmd_bench(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 2;  // all bad input exits 2, same as usage()
  }
  return usage();
}
