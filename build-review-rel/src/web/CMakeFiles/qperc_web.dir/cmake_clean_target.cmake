file(REMOVE_RECURSE
  "libqperc_web.a"
)
