# Empty compiler generated dependencies file for qperc_web.
# This may be replaced when dependencies are built.
