file(REMOVE_RECURSE
  "CMakeFiles/qperc_web.dir/catalog_io.cpp.o"
  "CMakeFiles/qperc_web.dir/catalog_io.cpp.o.d"
  "CMakeFiles/qperc_web.dir/website.cpp.o"
  "CMakeFiles/qperc_web.dir/website.cpp.o.d"
  "libqperc_web.a"
  "libqperc_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qperc_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
