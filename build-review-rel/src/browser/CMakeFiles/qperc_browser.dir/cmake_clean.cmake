file(REMOVE_RECURSE
  "CMakeFiles/qperc_browser.dir/metrics.cpp.o"
  "CMakeFiles/qperc_browser.dir/metrics.cpp.o.d"
  "CMakeFiles/qperc_browser.dir/page_loader.cpp.o"
  "CMakeFiles/qperc_browser.dir/page_loader.cpp.o.d"
  "libqperc_browser.a"
  "libqperc_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qperc_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
