file(REMOVE_RECURSE
  "libqperc_browser.a"
)
