# Empty dependencies file for qperc_browser.
# This may be replaced when dependencies are built.
