file(REMOVE_RECURSE
  "libqperc_net.a"
)
