file(REMOVE_RECURSE
  "CMakeFiles/qperc_net.dir/emulated_network.cpp.o"
  "CMakeFiles/qperc_net.dir/emulated_network.cpp.o.d"
  "CMakeFiles/qperc_net.dir/link.cpp.o"
  "CMakeFiles/qperc_net.dir/link.cpp.o.d"
  "CMakeFiles/qperc_net.dir/packet_trace.cpp.o"
  "CMakeFiles/qperc_net.dir/packet_trace.cpp.o.d"
  "CMakeFiles/qperc_net.dir/profile.cpp.o"
  "CMakeFiles/qperc_net.dir/profile.cpp.o.d"
  "libqperc_net.a"
  "libqperc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qperc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
