# Empty compiler generated dependencies file for qperc_net.
# This may be replaced when dependencies are built.
