# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review-rel/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("trace")
subdirs("sim")
subdirs("stats")
subdirs("net")
subdirs("cc")
subdirs("tcp")
subdirs("quic")
subdirs("http")
subdirs("web")
subdirs("browser")
subdirs("study")
subdirs("core")
subdirs("runner")
