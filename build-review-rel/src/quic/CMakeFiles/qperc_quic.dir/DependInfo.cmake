
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quic/connection.cpp" "src/quic/CMakeFiles/qperc_quic.dir/connection.cpp.o" "gcc" "src/quic/CMakeFiles/qperc_quic.dir/connection.cpp.o.d"
  "/root/repo/src/quic/receive_side.cpp" "src/quic/CMakeFiles/qperc_quic.dir/receive_side.cpp.o" "gcc" "src/quic/CMakeFiles/qperc_quic.dir/receive_side.cpp.o.d"
  "/root/repo/src/quic/send_side.cpp" "src/quic/CMakeFiles/qperc_quic.dir/send_side.cpp.o" "gcc" "src/quic/CMakeFiles/qperc_quic.dir/send_side.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review-rel/src/cc/CMakeFiles/qperc_cc.dir/DependInfo.cmake"
  "/root/repo/build-review-rel/src/net/CMakeFiles/qperc_net.dir/DependInfo.cmake"
  "/root/repo/build-review-rel/src/sim/CMakeFiles/qperc_sim.dir/DependInfo.cmake"
  "/root/repo/build-review-rel/src/util/CMakeFiles/qperc_util.dir/DependInfo.cmake"
  "/root/repo/build-review-rel/src/trace/CMakeFiles/qperc_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
