file(REMOVE_RECURSE
  "CMakeFiles/qperc_quic.dir/connection.cpp.o"
  "CMakeFiles/qperc_quic.dir/connection.cpp.o.d"
  "CMakeFiles/qperc_quic.dir/receive_side.cpp.o"
  "CMakeFiles/qperc_quic.dir/receive_side.cpp.o.d"
  "CMakeFiles/qperc_quic.dir/send_side.cpp.o"
  "CMakeFiles/qperc_quic.dir/send_side.cpp.o.d"
  "libqperc_quic.a"
  "libqperc_quic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qperc_quic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
