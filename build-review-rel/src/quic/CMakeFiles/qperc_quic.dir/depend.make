# Empty dependencies file for qperc_quic.
# This may be replaced when dependencies are built.
