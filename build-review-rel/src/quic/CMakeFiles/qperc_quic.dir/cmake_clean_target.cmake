file(REMOVE_RECURSE
  "libqperc_quic.a"
)
