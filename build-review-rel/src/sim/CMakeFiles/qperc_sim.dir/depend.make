# Empty dependencies file for qperc_sim.
# This may be replaced when dependencies are built.
