file(REMOVE_RECURSE
  "CMakeFiles/qperc_sim.dir/simulator.cpp.o"
  "CMakeFiles/qperc_sim.dir/simulator.cpp.o.d"
  "libqperc_sim.a"
  "libqperc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qperc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
