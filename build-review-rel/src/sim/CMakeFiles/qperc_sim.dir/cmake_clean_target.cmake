file(REMOVE_RECURSE
  "libqperc_sim.a"
)
