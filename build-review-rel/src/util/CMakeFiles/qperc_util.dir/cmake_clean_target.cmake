file(REMOVE_RECURSE
  "libqperc_util.a"
)
