# Empty dependencies file for qperc_util.
# This may be replaced when dependencies are built.
