file(REMOVE_RECURSE
  "CMakeFiles/qperc_util.dir/check.cpp.o"
  "CMakeFiles/qperc_util.dir/check.cpp.o.d"
  "CMakeFiles/qperc_util.dir/rng.cpp.o"
  "CMakeFiles/qperc_util.dir/rng.cpp.o.d"
  "CMakeFiles/qperc_util.dir/table.cpp.o"
  "CMakeFiles/qperc_util.dir/table.cpp.o.d"
  "libqperc_util.a"
  "libqperc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qperc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
