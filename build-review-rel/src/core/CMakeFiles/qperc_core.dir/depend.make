# Empty dependencies file for qperc_core.
# This may be replaced when dependencies are built.
