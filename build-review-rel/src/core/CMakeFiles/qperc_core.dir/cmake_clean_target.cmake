file(REMOVE_RECURSE
  "libqperc_core.a"
)
