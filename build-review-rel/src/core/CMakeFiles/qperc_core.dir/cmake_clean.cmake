file(REMOVE_RECURSE
  "CMakeFiles/qperc_core.dir/protocol.cpp.o"
  "CMakeFiles/qperc_core.dir/protocol.cpp.o.d"
  "CMakeFiles/qperc_core.dir/trial.cpp.o"
  "CMakeFiles/qperc_core.dir/trial.cpp.o.d"
  "CMakeFiles/qperc_core.dir/video.cpp.o"
  "CMakeFiles/qperc_core.dir/video.cpp.o.d"
  "libqperc_core.a"
  "libqperc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qperc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
