# Empty compiler generated dependencies file for qperc_tcp.
# This may be replaced when dependencies are built.
