file(REMOVE_RECURSE
  "CMakeFiles/qperc_tcp.dir/connection.cpp.o"
  "CMakeFiles/qperc_tcp.dir/connection.cpp.o.d"
  "CMakeFiles/qperc_tcp.dir/receiver.cpp.o"
  "CMakeFiles/qperc_tcp.dir/receiver.cpp.o.d"
  "CMakeFiles/qperc_tcp.dir/sender.cpp.o"
  "CMakeFiles/qperc_tcp.dir/sender.cpp.o.d"
  "libqperc_tcp.a"
  "libqperc_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qperc_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
