file(REMOVE_RECURSE
  "libqperc_tcp.a"
)
