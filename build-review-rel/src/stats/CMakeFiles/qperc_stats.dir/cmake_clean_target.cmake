file(REMOVE_RECURSE
  "libqperc_stats.a"
)
