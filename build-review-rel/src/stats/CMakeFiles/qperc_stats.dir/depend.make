# Empty dependencies file for qperc_stats.
# This may be replaced when dependencies are built.
