file(REMOVE_RECURSE
  "CMakeFiles/qperc_stats.dir/stats.cpp.o"
  "CMakeFiles/qperc_stats.dir/stats.cpp.o.d"
  "libqperc_stats.a"
  "libqperc_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qperc_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
