file(REMOVE_RECURSE
  "libqperc_study.a"
)
