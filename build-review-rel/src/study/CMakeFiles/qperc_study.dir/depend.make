# Empty dependencies file for qperc_study.
# This may be replaced when dependencies are built.
