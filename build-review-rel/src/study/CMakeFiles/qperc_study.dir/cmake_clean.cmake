file(REMOVE_RECURSE
  "CMakeFiles/qperc_study.dir/ab_study.cpp.o"
  "CMakeFiles/qperc_study.dir/ab_study.cpp.o.d"
  "CMakeFiles/qperc_study.dir/conformance.cpp.o"
  "CMakeFiles/qperc_study.dir/conformance.cpp.o.d"
  "CMakeFiles/qperc_study.dir/participant.cpp.o"
  "CMakeFiles/qperc_study.dir/participant.cpp.o.d"
  "CMakeFiles/qperc_study.dir/rater.cpp.o"
  "CMakeFiles/qperc_study.dir/rater.cpp.o.d"
  "CMakeFiles/qperc_study.dir/rating_study.cpp.o"
  "CMakeFiles/qperc_study.dir/rating_study.cpp.o.d"
  "libqperc_study.a"
  "libqperc_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qperc_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
