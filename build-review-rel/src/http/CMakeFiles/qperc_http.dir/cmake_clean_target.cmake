file(REMOVE_RECURSE
  "libqperc_http.a"
)
