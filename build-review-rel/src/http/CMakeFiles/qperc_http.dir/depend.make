# Empty dependencies file for qperc_http.
# This may be replaced when dependencies are built.
