file(REMOVE_RECURSE
  "CMakeFiles/qperc_http.dir/h1_session.cpp.o"
  "CMakeFiles/qperc_http.dir/h1_session.cpp.o.d"
  "CMakeFiles/qperc_http.dir/h2_session.cpp.o"
  "CMakeFiles/qperc_http.dir/h2_session.cpp.o.d"
  "CMakeFiles/qperc_http.dir/quic_session.cpp.o"
  "CMakeFiles/qperc_http.dir/quic_session.cpp.o.d"
  "libqperc_http.a"
  "libqperc_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qperc_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
