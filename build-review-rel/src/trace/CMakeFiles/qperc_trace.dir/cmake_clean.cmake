file(REMOVE_RECURSE
  "CMakeFiles/qperc_trace.dir/counters.cpp.o"
  "CMakeFiles/qperc_trace.dir/counters.cpp.o.d"
  "CMakeFiles/qperc_trace.dir/jsonl_sink.cpp.o"
  "CMakeFiles/qperc_trace.dir/jsonl_sink.cpp.o.d"
  "CMakeFiles/qperc_trace.dir/memory_sink.cpp.o"
  "CMakeFiles/qperc_trace.dir/memory_sink.cpp.o.d"
  "CMakeFiles/qperc_trace.dir/trace.cpp.o"
  "CMakeFiles/qperc_trace.dir/trace.cpp.o.d"
  "libqperc_trace.a"
  "libqperc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qperc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
