# Empty compiler generated dependencies file for qperc_trace.
# This may be replaced when dependencies are built.
