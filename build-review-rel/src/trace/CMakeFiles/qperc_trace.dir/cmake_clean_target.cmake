file(REMOVE_RECURSE
  "libqperc_trace.a"
)
