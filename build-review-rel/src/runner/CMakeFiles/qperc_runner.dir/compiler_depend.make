# Empty compiler generated dependencies file for qperc_runner.
# This may be replaced when dependencies are built.
