file(REMOVE_RECURSE
  "libqperc_runner.a"
)
