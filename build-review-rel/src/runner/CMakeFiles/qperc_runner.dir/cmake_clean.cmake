file(REMOVE_RECURSE
  "CMakeFiles/qperc_runner.dir/campaign.cpp.o"
  "CMakeFiles/qperc_runner.dir/campaign.cpp.o.d"
  "CMakeFiles/qperc_runner.dir/campaign_runner.cpp.o"
  "CMakeFiles/qperc_runner.dir/campaign_runner.cpp.o.d"
  "CMakeFiles/qperc_runner.dir/result_store.cpp.o"
  "CMakeFiles/qperc_runner.dir/result_store.cpp.o.d"
  "libqperc_runner.a"
  "libqperc_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qperc_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
