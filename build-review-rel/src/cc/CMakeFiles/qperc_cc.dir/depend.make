# Empty dependencies file for qperc_cc.
# This may be replaced when dependencies are built.
