file(REMOVE_RECURSE
  "CMakeFiles/qperc_cc.dir/bandwidth_sampler.cpp.o"
  "CMakeFiles/qperc_cc.dir/bandwidth_sampler.cpp.o.d"
  "CMakeFiles/qperc_cc.dir/bbr.cpp.o"
  "CMakeFiles/qperc_cc.dir/bbr.cpp.o.d"
  "CMakeFiles/qperc_cc.dir/bbr2.cpp.o"
  "CMakeFiles/qperc_cc.dir/bbr2.cpp.o.d"
  "CMakeFiles/qperc_cc.dir/cubic.cpp.o"
  "CMakeFiles/qperc_cc.dir/cubic.cpp.o.d"
  "CMakeFiles/qperc_cc.dir/factory.cpp.o"
  "CMakeFiles/qperc_cc.dir/factory.cpp.o.d"
  "CMakeFiles/qperc_cc.dir/pacer.cpp.o"
  "CMakeFiles/qperc_cc.dir/pacer.cpp.o.d"
  "CMakeFiles/qperc_cc.dir/reno.cpp.o"
  "CMakeFiles/qperc_cc.dir/reno.cpp.o.d"
  "libqperc_cc.a"
  "libqperc_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qperc_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
