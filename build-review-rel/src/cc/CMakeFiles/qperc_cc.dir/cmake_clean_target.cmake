file(REMOVE_RECURSE
  "libqperc_cc.a"
)
