file(REMOVE_RECURSE
  "CMakeFiles/qperc.dir/qperc_cli.cpp.o"
  "CMakeFiles/qperc.dir/qperc_cli.cpp.o.d"
  "qperc"
  "qperc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qperc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
