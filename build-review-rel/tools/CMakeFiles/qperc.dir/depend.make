# Empty dependencies file for qperc.
# This may be replaced when dependencies are built.
