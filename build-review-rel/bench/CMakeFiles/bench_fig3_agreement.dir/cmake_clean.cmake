file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_agreement.dir/bench_fig3_agreement.cpp.o"
  "CMakeFiles/bench_fig3_agreement.dir/bench_fig3_agreement.cpp.o.d"
  "bench_fig3_agreement"
  "bench_fig3_agreement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
