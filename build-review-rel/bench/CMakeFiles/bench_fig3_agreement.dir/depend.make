# Empty dependencies file for bench_fig3_agreement.
# This may be replaced when dependencies are built.
