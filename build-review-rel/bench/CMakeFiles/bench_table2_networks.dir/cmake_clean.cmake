file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_networks.dir/bench_table2_networks.cpp.o"
  "CMakeFiles/bench_table2_networks.dir/bench_table2_networks.cpp.o.d"
  "bench_table2_networks"
  "bench_table2_networks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
