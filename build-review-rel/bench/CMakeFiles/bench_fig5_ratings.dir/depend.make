# Empty dependencies file for bench_fig5_ratings.
# This may be replaced when dependencies are built.
