file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_ratings.dir/bench_fig5_ratings.cpp.o"
  "CMakeFiles/bench_fig5_ratings.dir/bench_fig5_ratings.cpp.o.d"
  "bench_fig5_ratings"
  "bench_fig5_ratings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_ratings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
