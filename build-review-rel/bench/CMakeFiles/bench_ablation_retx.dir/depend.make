# Empty dependencies file for bench_ablation_retx.
# This may be replaced when dependencies are built.
