file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_retx.dir/bench_ablation_retx.cpp.o"
  "CMakeFiles/bench_ablation_retx.dir/bench_ablation_retx.cpp.o.d"
  "bench_ablation_retx"
  "bench_ablation_retx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_retx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
