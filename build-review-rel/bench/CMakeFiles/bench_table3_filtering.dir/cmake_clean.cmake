file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_filtering.dir/bench_table3_filtering.cpp.o"
  "CMakeFiles/bench_table3_filtering.dir/bench_table3_filtering.cpp.o.d"
  "bench_table3_filtering"
  "bench_table3_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
