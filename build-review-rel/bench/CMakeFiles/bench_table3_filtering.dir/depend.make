# Empty dependencies file for bench_table3_filtering.
# This may be replaced when dependencies are built.
