file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_future.dir/bench_ext_future.cpp.o"
  "CMakeFiles/bench_ext_future.dir/bench_ext_future.cpp.o.d"
  "bench_ext_future"
  "bench_ext_future.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_future.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
