# Empty compiler generated dependencies file for bench_ext_future.
# This may be replaced when dependencies are built.
