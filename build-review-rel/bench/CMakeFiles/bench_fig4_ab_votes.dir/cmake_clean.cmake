file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_ab_votes.dir/bench_fig4_ab_votes.cpp.o"
  "CMakeFiles/bench_fig4_ab_votes.dir/bench_fig4_ab_votes.cpp.o.d"
  "bench_fig4_ab_votes"
  "bench_fig4_ab_votes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_ab_votes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
