# Empty compiler generated dependencies file for bench_fig4_ab_votes.
# This may be replaced when dependencies are built.
