# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review-rel/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review-rel/tests/test_smoke[1]_include.cmake")
include("/root/repo/build-review-rel/tests/test_check[1]_include.cmake")
include("/root/repo/build-review-rel/tests/test_trace[1]_include.cmake")
include("/root/repo/build-review-rel/tests/test_util[1]_include.cmake")
include("/root/repo/build-review-rel/tests/test_sim[1]_include.cmake")
include("/root/repo/build-review-rel/tests/test_stats[1]_include.cmake")
include("/root/repo/build-review-rel/tests/test_stats_property[1]_include.cmake")
include("/root/repo/build-review-rel/tests/test_net[1]_include.cmake")
include("/root/repo/build-review-rel/tests/test_wire[1]_include.cmake")
include("/root/repo/build-review-rel/tests/test_cc[1]_include.cmake")
include("/root/repo/build-review-rel/tests/test_cc2[1]_include.cmake")
include("/root/repo/build-review-rel/tests/test_tcp[1]_include.cmake")
include("/root/repo/build-review-rel/tests/test_quic[1]_include.cmake")
include("/root/repo/build-review-rel/tests/test_quic_loss[1]_include.cmake")
include("/root/repo/build-review-rel/tests/test_http[1]_include.cmake")
include("/root/repo/build-review-rel/tests/test_web[1]_include.cmake")
include("/root/repo/build-review-rel/tests/test_catalog_io[1]_include.cmake")
include("/root/repo/build-review-rel/tests/test_browser[1]_include.cmake")
include("/root/repo/build-review-rel/tests/test_study[1]_include.cmake")
include("/root/repo/build-review-rel/tests/test_core[1]_include.cmake")
include("/root/repo/build-review-rel/tests/test_golden[1]_include.cmake")
include("/root/repo/build-review-rel/tests/test_runner[1]_include.cmake")
include("/root/repo/build-review-rel/tests/test_integration[1]_include.cmake")
include("/root/repo/build-review-rel/tests/test_property[1]_include.cmake")
