# Empty compiler generated dependencies file for test_cc2.
# This may be replaced when dependencies are built.
