file(REMOVE_RECURSE
  "CMakeFiles/test_cc2.dir/cc2_test.cpp.o"
  "CMakeFiles/test_cc2.dir/cc2_test.cpp.o.d"
  "test_cc2"
  "test_cc2.pdb"
  "test_cc2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cc2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
