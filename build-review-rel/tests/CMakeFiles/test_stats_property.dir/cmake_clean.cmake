file(REMOVE_RECURSE
  "CMakeFiles/test_stats_property.dir/stats_property_test.cpp.o"
  "CMakeFiles/test_stats_property.dir/stats_property_test.cpp.o.d"
  "test_stats_property"
  "test_stats_property.pdb"
  "test_stats_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
