# Empty compiler generated dependencies file for test_stats_property.
# This may be replaced when dependencies are built.
