# Empty compiler generated dependencies file for test_catalog_io.
# This may be replaced when dependencies are built.
