file(REMOVE_RECURSE
  "CMakeFiles/test_catalog_io.dir/catalog_io_test.cpp.o"
  "CMakeFiles/test_catalog_io.dir/catalog_io_test.cpp.o.d"
  "test_catalog_io"
  "test_catalog_io.pdb"
  "test_catalog_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_catalog_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
