file(REMOVE_RECURSE
  "CMakeFiles/test_check.dir/check_release_test.cpp.o"
  "CMakeFiles/test_check.dir/check_release_test.cpp.o.d"
  "CMakeFiles/test_check.dir/check_test.cpp.o"
  "CMakeFiles/test_check.dir/check_test.cpp.o.d"
  "test_check"
  "test_check.pdb"
  "test_check[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
