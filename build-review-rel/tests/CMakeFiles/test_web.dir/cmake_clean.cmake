file(REMOVE_RECURSE
  "CMakeFiles/test_web.dir/web_test.cpp.o"
  "CMakeFiles/test_web.dir/web_test.cpp.o.d"
  "test_web"
  "test_web.pdb"
  "test_web[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
