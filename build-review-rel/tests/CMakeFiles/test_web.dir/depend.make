# Empty dependencies file for test_web.
# This may be replaced when dependencies are built.
