file(REMOVE_RECURSE
  "CMakeFiles/test_browser.dir/browser_test.cpp.o"
  "CMakeFiles/test_browser.dir/browser_test.cpp.o.d"
  "test_browser"
  "test_browser.pdb"
  "test_browser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
