file(REMOVE_RECURSE
  "CMakeFiles/test_quic_loss.dir/quic_loss_test.cpp.o"
  "CMakeFiles/test_quic_loss.dir/quic_loss_test.cpp.o.d"
  "test_quic_loss"
  "test_quic_loss.pdb"
  "test_quic_loss[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quic_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
