# Empty dependencies file for test_quic_loss.
# This may be replaced when dependencies are built.
