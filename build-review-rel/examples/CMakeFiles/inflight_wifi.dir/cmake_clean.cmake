file(REMOVE_RECURSE
  "CMakeFiles/inflight_wifi.dir/inflight_wifi.cpp.o"
  "CMakeFiles/inflight_wifi.dir/inflight_wifi.cpp.o.d"
  "inflight_wifi"
  "inflight_wifi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inflight_wifi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
