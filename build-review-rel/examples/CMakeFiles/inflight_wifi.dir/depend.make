# Empty dependencies file for inflight_wifi.
# This may be replaced when dependencies are built.
