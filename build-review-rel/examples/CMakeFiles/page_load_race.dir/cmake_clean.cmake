file(REMOVE_RECURSE
  "CMakeFiles/page_load_race.dir/page_load_race.cpp.o"
  "CMakeFiles/page_load_race.dir/page_load_race.cpp.o.d"
  "page_load_race"
  "page_load_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_load_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
