# Empty dependencies file for page_load_race.
# This may be replaced when dependencies are built.
