# Empty compiler generated dependencies file for trace_flow.
# This may be replaced when dependencies are built.
