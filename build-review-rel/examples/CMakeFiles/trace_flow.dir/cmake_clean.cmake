file(REMOVE_RECURSE
  "CMakeFiles/trace_flow.dir/trace_flow.cpp.o"
  "CMakeFiles/trace_flow.dir/trace_flow.cpp.o.d"
  "trace_flow"
  "trace_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
