
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/tune_your_tcp.cpp" "examples/CMakeFiles/tune_your_tcp.dir/tune_your_tcp.cpp.o" "gcc" "examples/CMakeFiles/tune_your_tcp.dir/tune_your_tcp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review-rel/src/runner/CMakeFiles/qperc_runner.dir/DependInfo.cmake"
  "/root/repo/build-review-rel/src/core/CMakeFiles/qperc_core.dir/DependInfo.cmake"
  "/root/repo/build-review-rel/src/study/CMakeFiles/qperc_study.dir/DependInfo.cmake"
  "/root/repo/build-review-rel/src/browser/CMakeFiles/qperc_browser.dir/DependInfo.cmake"
  "/root/repo/build-review-rel/src/http/CMakeFiles/qperc_http.dir/DependInfo.cmake"
  "/root/repo/build-review-rel/src/web/CMakeFiles/qperc_web.dir/DependInfo.cmake"
  "/root/repo/build-review-rel/src/tcp/CMakeFiles/qperc_tcp.dir/DependInfo.cmake"
  "/root/repo/build-review-rel/src/quic/CMakeFiles/qperc_quic.dir/DependInfo.cmake"
  "/root/repo/build-review-rel/src/cc/CMakeFiles/qperc_cc.dir/DependInfo.cmake"
  "/root/repo/build-review-rel/src/net/CMakeFiles/qperc_net.dir/DependInfo.cmake"
  "/root/repo/build-review-rel/src/stats/CMakeFiles/qperc_stats.dir/DependInfo.cmake"
  "/root/repo/build-review-rel/src/sim/CMakeFiles/qperc_sim.dir/DependInfo.cmake"
  "/root/repo/build-review-rel/src/util/CMakeFiles/qperc_util.dir/DependInfo.cmake"
  "/root/repo/build-review-rel/src/trace/CMakeFiles/qperc_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
