file(REMOVE_RECURSE
  "CMakeFiles/tune_your_tcp.dir/tune_your_tcp.cpp.o"
  "CMakeFiles/tune_your_tcp.dir/tune_your_tcp.cpp.o.d"
  "tune_your_tcp"
  "tune_your_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_your_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
