# Empty dependencies file for tune_your_tcp.
# This may be replaced when dependencies are built.
