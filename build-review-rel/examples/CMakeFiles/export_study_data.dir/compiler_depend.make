# Empty compiler generated dependencies file for export_study_data.
# This may be replaced when dependencies are built.
