file(REMOVE_RECURSE
  "CMakeFiles/export_study_data.dir/export_study_data.cpp.o"
  "CMakeFiles/export_study_data.dir/export_study_data.cpp.o.d"
  "export_study_data"
  "export_study_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_study_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
